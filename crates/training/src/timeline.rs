//! SM-utilization step timelines (Figures 10, 19, 22).
//!
//! A training step is a sequence of phases — pipeline bubbles, compute
//! bursts, exposed collectives — each with a duration and a characteristic
//! SM activity. The phase structure comes straight from the parallelization
//! arithmetic in [`Strategy`]; sampling the phase list at a fixed interval
//! reproduces the paper's 1 ms DCGM profiles.

use crate::model::ModelConfig;
use crate::parallelism::Strategy;

/// A100 dense BF16 peak, used to convert FLOPs to seconds.
const A100_PEAK_FLOPS: f64 = 312e12;

/// Achieved fraction of peak inside a dense compute burst.
const DENSE_KERNEL_EFFICIENCY: f64 = 0.55;

/// Achieved fraction of peak inside an MoE compute burst (smaller, less
/// fusable expert GEMMs).
const MOE_KERNEL_EFFICIENCY: f64 = 0.45;

/// What a slice of the step is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Pipeline bubble — GPUs waiting on upstream/downstream stages.
    Bubble,
    /// Dense/forward/backward compute.
    Compute,
    /// Exposed (non-overlapped) collective communication.
    Communication,
}

/// One contiguous slice of the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// What's happening.
    pub kind: PhaseKind,
    /// Wall time, milliseconds.
    pub duration_ms: f64,
    /// SM activity during the slice, percent.
    pub sm_util: f64,
}

/// A full training step as a phase sequence.
#[derive(Debug, Clone)]
pub struct StepTimeline {
    label: String,
    phases: Vec<Phase>,
}

impl StepTimeline {
    /// Model a dense-model step under the given strategy.
    pub fn dense(model: &ModelConfig, strategy: &Strategy, global_batch_tokens: u64) -> Self {
        assert!(model.moe.is_none(), "use StepTimeline::moe for MoE models");
        let gpus = strategy.gpus() as f64;
        let flops = model.train_flops_per_token()
            * global_batch_tokens as f64
            * (1.0 + strategy.recompute_overhead());
        let compute_ms = flops / (gpus * A100_PEAK_FLOPS * DENSE_KERNEL_EFFICIENCY) * 1e3;

        let bubble = strategy.bubble_fraction();
        let comm = strategy.exposed_comm_fraction();
        let busy_frac = 1.0 - bubble - comm;
        let step_ms = compute_ms / busy_frac;

        let mut phases = Vec::new();
        match strategy {
            Strategy::ThreeD { micro_batches, .. } => {
                // Warmup bubble, m × (compute burst + exposed collective),
                // cooldown bubble.
                let m = *micro_batches as usize;
                let bubble_ms = step_ms * bubble / 2.0;
                let burst_ms = compute_ms / m as f64;
                let comm_ms = step_ms * comm / m as f64;
                phases.push(Phase {
                    kind: PhaseKind::Bubble,
                    duration_ms: bubble_ms,
                    sm_util: 2.0,
                });
                for _ in 0..m {
                    phases.push(Phase {
                        kind: PhaseKind::Compute,
                        duration_ms: burst_ms,
                        sm_util: 85.0,
                    });
                    phases.push(Phase {
                        kind: PhaseKind::Communication,
                        duration_ms: comm_ms,
                        sm_util: 8.0,
                    });
                }
                phases.push(Phase {
                    kind: PhaseKind::Bubble,
                    duration_ms: bubble_ms,
                    sm_util: 2.0,
                });
            }
            Strategy::HierarchicalZero { .. } => {
                // Fine-grained overlap: long bursts with thin exposed
                // all-gather/reduce-scatter slices at step boundaries.
                let chunks = 8;
                let burst_ms = compute_ms / chunks as f64;
                let comm_ms = step_ms * comm / chunks as f64;
                for _ in 0..chunks {
                    phases.push(Phase {
                        kind: PhaseKind::Compute,
                        duration_ms: burst_ms,
                        sm_util: 92.0,
                    });
                    phases.push(Phase {
                        kind: PhaseKind::Communication,
                        duration_ms: comm_ms,
                        sm_util: 10.0,
                    });
                }
            }
        }
        StepTimeline {
            label: format!("{} / {}", model.name, strategy.label()),
            phases,
        }
    }

    /// Model an MoE step (Appendix A.6): token routing inserts two
    /// all-to-alls per layer, which a single-HCA node (Seren) cannot hide.
    pub fn moe(model: &ModelConfig, gpus: u32, single_nic: bool) -> Self {
        let m = model.moe.expect("model must be MoE");
        let flops = model.train_flops_per_token() * 4_194_304.0; // 4M-token batch
        let compute_ms = flops / (gpus as f64 * A100_PEAK_FLOPS * MOE_KERNEL_EFFICIENCY) * 1e3;
        // All-to-all exposure: dominant on one 200 Gb/s HCA shared by 8
        // GPUs, still visible with four HCAs.
        let comm_frac = if single_nic { 0.55 } else { 0.25 };
        let step_ms = compute_ms / (1.0 - comm_frac);
        let layers = model.layers as usize;
        let burst_ms = compute_ms / layers as f64;
        let a2a_ms = step_ms * comm_frac / (2.0 * layers as f64);
        let mut phases = Vec::new();
        for _ in 0..layers {
            phases.push(Phase {
                kind: PhaseKind::Communication,
                duration_ms: a2a_ms,
                sm_util: 4.0,
            });
            phases.push(Phase {
                kind: PhaseKind::Compute,
                duration_ms: burst_ms,
                sm_util: 80.0,
            });
            phases.push(Phase {
                kind: PhaseKind::Communication,
                duration_ms: a2a_ms,
                sm_util: 4.0,
            });
        }
        StepTimeline {
            label: format!("{} (top-{} of {} experts)", model.name, m.top_k, m.experts),
            phases,
        }
    }

    /// Human label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The phase sequence.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Step wall time, ms.
    pub fn step_ms(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_ms).sum()
    }

    /// Time-weighted mean SM utilization, percent.
    pub fn mean_sm_util(&self) -> f64 {
        let total = self.step_ms();
        self.phases
            .iter()
            .map(|p| p.sm_util * p.duration_ms)
            .sum::<f64>()
            / total
    }

    /// Peak SM utilization, percent.
    pub fn peak_sm_util(&self) -> f64 {
        self.phases.iter().map(|p| p.sm_util).fold(0.0, f64::max)
    }

    /// Fraction of the step with SM utilization below `threshold` percent.
    pub fn idle_fraction(&self, threshold: f64) -> f64 {
        let total = self.step_ms();
        self.phases
            .iter()
            .filter(|p| p.sm_util < threshold)
            .map(|p| p.duration_ms)
            .sum::<f64>()
            / total
    }

    /// Sample `(time_ms, sm_util)` at a fixed interval — the DCGM profile.
    pub fn samples(&self, interval_ms: f64) -> Vec<(f64, f64)> {
        assert!(interval_ms > 0.0, "interval must be positive");
        let mut out = Vec::new();
        let mut t = 0.0;
        let step = self.step_ms();
        while t < step {
            out.push((t, self.util_at(t)));
            t += interval_ms;
        }
        out
    }

    fn util_at(&self, t_ms: f64) -> f64 {
        let mut acc = 0.0;
        for p in &self.phases {
            acc += p.duration_ms;
            if t_ms < acc {
                return p.sm_util;
            }
        }
        self.phases.last().map_or(0.0, |p| p.sm_util)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1() -> StepTimeline {
        StepTimeline::dense(
            &ModelConfig::dense_123b(),
            &Strategy::three_d_paper(2048),
            4 * 1024 * 1024,
        )
    }

    fn v2() -> StepTimeline {
        StepTimeline::dense(
            &ModelConfig::dense_123b(),
            &Strategy::hierarchical_paper(2048),
            4 * 1024 * 1024,
        )
    }

    #[test]
    fn v2_is_about_16_percent_faster() {
        let speedup = v1().step_ms() / v2().step_ms();
        // §4.1: "achieving around 16% acceleration".
        assert!((1.10..1.25).contains(&speedup), "speedup = {speedup:.3}");
    }

    #[test]
    fn v2_has_higher_peak_and_less_idle() {
        let (a, b) = (v1(), v2());
        assert!(b.peak_sm_util() > a.peak_sm_util());
        assert!(b.idle_fraction(20.0) < a.idle_fraction(20.0));
        assert!(b.mean_sm_util() > a.mean_sm_util());
    }

    #[test]
    fn v1_has_pipeline_bubbles() {
        let bubbles: f64 = v1()
            .phases()
            .iter()
            .filter(|p| p.kind == PhaseKind::Bubble)
            .map(|p| p.duration_ms)
            .sum();
        let frac = bubbles / v1().step_ms();
        // 1F1B with pp=4, m=16: bubble fraction 3/19 ≈ 0.158.
        assert!((frac - 3.0 / 19.0).abs() < 0.01, "bubble frac {frac:.3}");
        assert!(v2().phases().iter().all(|p| p.kind != PhaseKind::Bubble));
    }

    #[test]
    fn step_time_is_plausible_for_123b_on_2048() {
        // 4M tokens × 6 × 122B FLOPs ≈ 2.9 EFLOP over 2048 A100s at ~40%
        // MFU → single-digit seconds per step.
        let ms = v1().step_ms();
        assert!((2_000.0..20_000.0).contains(&ms), "step = {ms:.0} ms");
    }

    #[test]
    fn samples_cover_step_and_hold_phase_values() {
        let tl = v1();
        let s = tl.samples(1.0);
        assert!(!s.is_empty());
        assert!(s.len() as f64 >= tl.step_ms() - 1.0);
        // First sample sits in the warmup bubble.
        assert_eq!(s[0].1, 2.0);
        // Utilization values come only from the phase vocabulary.
        for &(_, u) in &s {
            assert!([2.0, 8.0, 85.0].contains(&u), "unexpected util {u}");
        }
    }

    #[test]
    fn moe_single_nic_much_lower_utilization() {
        let moe = StepTimeline::moe(&ModelConfig::moe_mistral_8x7b(), 1024, true);
        let dense = v2();
        // Figure 22: MoE SM utilization is far below the dense runs.
        assert!(moe.mean_sm_util() < 0.6 * dense.mean_sm_util());
        // More than half the step is exposed all-to-all.
        assert!(moe.idle_fraction(20.0) > 0.5);
    }

    #[test]
    fn moe_multi_nic_recovers_some_utilization() {
        let single = StepTimeline::moe(&ModelConfig::moe_mistral_8x7b(), 1024, true);
        let multi = StepTimeline::moe(&ModelConfig::moe_mistral_8x7b(), 1024, false);
        assert!(multi.mean_sm_util() > single.mean_sm_util() + 10.0);
    }

    #[test]
    fn fig19_smaller_fleet_same_shape_slower_step() {
        let big = v1();
        let small = StepTimeline::dense(
            &ModelConfig::dense_123b(),
            &Strategy::three_d_paper(1024),
            4 * 1024 * 1024,
        );
        // Same utilization structure, roughly double the step time.
        let ratio = small.step_ms() / big.step_ms();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio:.2}");
        assert!((small.mean_sm_util() - big.mean_sm_util()).abs() < 3.0);
    }

    #[test]
    #[should_panic(expected = "use StepTimeline::moe")]
    fn dense_constructor_rejects_moe() {
        StepTimeline::dense(
            &ModelConfig::moe_mistral_8x7b(),
            &Strategy::hierarchical_paper(1024),
            1024 * 1024,
        );
    }
}
