//! The discrete-event scheduler.
//!
//! Events are job arrivals and completions. On every event the scheduler
//! sweeps its priority queues in order and starts every queued job that
//! fits — FIFO within a priority with backfill (a job that doesn't fit does
//! not block smaller jobs behind it, mirroring Slurm's backfill scheduler).
//!
//! Allocation policy (per [`SchedulerConfig`]):
//! * pretraining draws from the reserved quota first and may overflow into
//!   the shared pool;
//! * other types draw from the shared pool;
//! * if borrowing is enabled, a non-pretraining job that can never fit in
//!   the shared pool alone may run best-effort on idle reserved GPUs.

use std::collections::VecDeque;

use acme_sim_core::{EventQueue, SimDuration, SimTime};
use acme_workload::{JobRecord, JobType};

use crate::config::SchedulerConfig;

/// What the scheduler produced for a trace.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// The input jobs with `queue_delay` filled in, original order.
    pub jobs: Vec<JobRecord>,
    /// `(time, gpus_in_use)` at every allocation change.
    pub usage: Vec<(SimTime, u32)>,
    /// Makespan: when the last job finished.
    pub finished_at: SimTime,
}

impl ScheduleOutcome {
    /// Mean GPU occupancy fraction over the schedule, weighted by time.
    pub fn mean_occupancy(&self, total_gpus: u32) -> f64 {
        if self.usage.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in self.usage.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs_f64();
            acc += w[0].1 as f64 * dt;
        }
        let span = (self.finished_at - self.usage[0].0).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            acc / (span * total_gpus as f64)
        }
    }
}

/// Per-running-job allocation bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Allocation {
    reserved: u32,
    shared: u32,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrive(usize),
    Finish(usize),
}

/// The scheduler simulator.
#[derive(Debug)]
pub struct ClusterScheduler {
    config: SchedulerConfig,
}

impl ClusterScheduler {
    /// Build a scheduler with the given policy.
    pub fn new(config: SchedulerConfig) -> Self {
        ClusterScheduler { config }
    }

    /// The policy in force.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Run the trace to completion and fill in queue delays.
    ///
    /// # Panics
    /// Panics if any job demands more GPUs than the cluster has — such a job
    /// could never start and the trace is malformed for this cluster.
    pub fn run(&self, mut jobs: Vec<JobRecord>) -> ScheduleOutcome {
        for j in &jobs {
            assert!(
                j.gpus <= self.config.total_gpus,
                "job {} demands {} GPUs but the cluster has {}",
                j.id,
                j.gpus,
                self.config.total_gpus
            );
        }

        // Arrival order must be chronological for FIFO semantics.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| jobs[i].submit);

        // One arrival per job now, plus at most one finish per running job
        // later: size the future-event list once, up front.
        let mut queue = EventQueue::with_capacity(jobs.len() + 1);
        for &i in &order {
            queue.schedule(jobs[i].submit, Event::Arrive(i));
        }

        let mut queues: Vec<VecDeque<usize>> = (0..SchedulerConfig::PRIORITY_LEVELS)
            .map(|_| VecDeque::new())
            .collect();
        let mut allocs: Vec<Option<Allocation>> = vec![None; jobs.len()];
        let mut used_reserved: u32 = 0;
        let mut used_shared: u32 = 0;
        let mut usage: Vec<(SimTime, u32)> = Vec::new();
        let mut finished_at = SimTime::ZERO;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Arrive(i) => {
                    let p = SchedulerConfig::priority(jobs[i].job_type) as usize;
                    queues[p].push_back(i);
                }
                Event::Finish(i) => {
                    let a = allocs[i]
                        .take()
                        .expect("finishing a job that never started");
                    used_reserved -= a.reserved;
                    used_shared -= a.shared;
                    finished_at = finished_at.max(now);
                    usage.push((now, used_reserved + used_shared));
                }
            }

            // Sweep priorities high→low, starting everything that fits.
            for level in queues.iter_mut() {
                let mut remaining = VecDeque::new();
                while let Some(i) = level.pop_front() {
                    match self.try_allocate(
                        jobs[i].job_type,
                        jobs[i].gpus,
                        used_reserved,
                        used_shared,
                    ) {
                        Some(a) => {
                            used_reserved += a.reserved;
                            used_shared += a.shared;
                            allocs[i] = Some(a);
                            jobs[i].queue_delay = now.saturating_since(jobs[i].submit);
                            queue.schedule_in(jobs[i].duration, Event::Finish(i));
                            usage.push((now, used_reserved + used_shared));
                        }
                        // Backfill: keep scanning smaller jobs behind it.
                        None => remaining.push_back(i),
                    }
                }
                *level = remaining;
            }
        }

        for (p, q) in queues.iter().enumerate() {
            assert!(q.is_empty(), "priority-{p} queue never drained");
        }

        ScheduleOutcome {
            jobs,
            usage,
            finished_at,
        }
    }

    /// Where would a job of this type/size run right now, if anywhere?
    fn try_allocate(
        &self,
        ty: JobType,
        gpus: u32,
        used_reserved: u32,
        used_shared: u32,
    ) -> Option<Allocation> {
        let c = &self.config;
        if !c.reservation_enabled {
            // Single pool, accounted entirely as "shared".
            return if used_shared + gpus <= c.total_gpus {
                Some(Allocation {
                    reserved: 0,
                    shared: gpus,
                })
            } else {
                None
            };
        }

        let free_reserved = c.reserved_gpus - used_reserved;
        let free_shared = c.shared_gpus() - used_shared;

        if ty == JobType::Pretrain {
            // Reserved first, overflow into shared.
            let from_reserved = gpus.min(free_reserved);
            let from_shared = gpus - from_reserved;
            if from_shared <= free_shared {
                return Some(Allocation {
                    reserved: from_reserved,
                    shared: from_shared,
                });
            }
            return None;
        }

        // Non-pretraining: shared pool.
        if gpus <= free_shared {
            return Some(Allocation {
                reserved: 0,
                shared: gpus,
            });
        }
        // Best-effort: a job that can NEVER fit in the shared pool may
        // borrow idle reserved GPUs wholesale.
        if c.best_effort_borrowing && gpus > c.shared_gpus() && gpus <= free_reserved {
            return Some(Allocation {
                reserved: gpus,
                shared: 0,
            });
        }
        None
    }
}

/// Snap evaluation submissions down to the start of `window`-sized buckets,
/// modelling the paper's "evaluation jobs are typically submitted as a batch
/// simultaneously" (§3.2). Other job types are untouched.
pub fn coalesce_eval_batches(jobs: &mut [JobRecord], window: SimDuration) {
    assert!(!window.is_zero(), "batch window must be positive");
    let w = window.as_micros();
    for j in jobs.iter_mut() {
        if j.job_type == JobType::Evaluation {
            let t = j.submit.as_micros();
            j.submit = SimTime::from_micros(t - t % w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_workload::job::Cluster;
    use acme_workload::JobStatus;

    fn job(id: u64, ty: JobType, gpus: u32, submit_s: u64, dur_s: u64) -> JobRecord {
        JobRecord {
            id,
            cluster: Cluster::Kalos,
            job_type: ty,
            submit: SimTime::from_secs(submit_s),
            queue_delay: SimDuration::ZERO,
            duration: SimDuration::from_secs(dur_s),
            gpus,
            status: JobStatus::Completed,
        }
    }

    fn delays(outcome: &ScheduleOutcome) -> Vec<(u64, f64)> {
        outcome
            .jobs
            .iter()
            .map(|j| (j.id, j.queue_delay.as_secs_f64()))
            .collect()
    }

    #[test]
    fn uncontended_jobs_start_immediately() {
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(100));
        let out = s.run(vec![
            job(0, JobType::Evaluation, 4, 0, 60),
            job(1, JobType::Debug, 8, 10, 60),
        ]);
        assert!(out.jobs.iter().all(|j| j.queue_delay.is_zero()));
        assert_eq!(out.finished_at, SimTime::from_secs(70));
    }

    #[test]
    fn fifo_queueing_under_contention() {
        // 10-GPU pool; two 8-GPU jobs must serialize.
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(10));
        let out = s.run(vec![
            job(0, JobType::Debug, 8, 0, 100),
            job(1, JobType::Debug, 8, 0, 100),
        ]);
        let d = delays(&out);
        assert_eq!(d[0].1, 0.0);
        assert_eq!(d[1].1, 100.0);
    }

    #[test]
    fn backfill_lets_small_jobs_slip_past() {
        // 10 GPUs: a running 8-GPU job, a queued 8-GPU job, then a 2-GPU job
        // that fits right now and should NOT wait behind the 8-GPU job.
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(10));
        let out = s.run(vec![
            job(0, JobType::Debug, 8, 0, 100),
            job(1, JobType::Debug, 8, 1, 100),
            job(2, JobType::Debug, 2, 2, 10),
        ]);
        let d = delays(&out);
        assert_eq!(d[1].1, 99.0, "8-GPU job waits for the first to finish");
        assert_eq!(d[2].1, 0.0, "2-GPU job backfills immediately");
    }

    #[test]
    fn pretraining_priority_beats_earlier_eval() {
        // 10 GPUs, all busy until t=100. At t=5 an eval (8 GPUs) queues; at
        // t=6 a pretrain (8 GPUs) queues. Pretrain must start first despite
        // arriving later.
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(10));
        let out = s.run(vec![
            job(0, JobType::Debug, 10, 0, 100),
            job(1, JobType::Evaluation, 8, 5, 50),
            job(2, JobType::Pretrain, 8, 6, 50),
        ]);
        let d = delays(&out);
        let pretrain_start = 100.0 - 6.0;
        let eval_start = 150.0 - 5.0;
        assert_eq!(d[2].1, pretrain_start);
        assert_eq!(d[1].1, eval_start);
    }

    #[test]
    fn reservation_shields_pretraining_from_eval_load() {
        // 100 GPUs, 90 reserved. A burst of evals saturates the 10 shared
        // GPUs; a pretrain arriving later starts instantly on the quota.
        let mut jobs: Vec<JobRecord> = (0..10)
            .map(|i| job(i, JobType::Evaluation, 2, 0, 1000))
            .collect();
        jobs.push(job(100, JobType::Pretrain, 80, 50, 500));
        let s = ClusterScheduler::new(SchedulerConfig::with_reservation(100, 0.9));
        let out = s.run(jobs);
        let pre = out.jobs.iter().find(|j| j.id == 100).unwrap();
        assert!(pre.queue_delay.is_zero(), "pretrain should never queue");
        // Only 5 of the 10 evals fit in the shared pool at once.
        let queued_evals = out
            .jobs
            .iter()
            .filter(|j| j.job_type == JobType::Evaluation && !j.queue_delay.is_zero())
            .count();
        assert_eq!(queued_evals, 5);
    }

    #[test]
    fn best_effort_borrowing_rescues_oversized_debug_jobs() {
        // Shared pool is 10; a 50-GPU debug job can never fit there, but the
        // reserved quota is idle, so borrowing lets it run.
        let s = ClusterScheduler::new(SchedulerConfig::with_reservation(100, 0.9));
        let out = s.run(vec![job(0, JobType::Debug, 50, 0, 10)]);
        assert!(out.jobs[0].queue_delay.is_zero());

        // With borrowing disabled the same trace would deadlock; the
        // scheduler would panic on the undrained queue.
        let mut cfg = SchedulerConfig::with_reservation(100, 0.9);
        cfg.best_effort_borrowing = false;
        let result = std::panic::catch_unwind(|| {
            ClusterScheduler::new(cfg).run(vec![job(0, JobType::Debug, 50, 0, 10)])
        });
        assert!(
            result.is_err(),
            "queue should never drain without borrowing"
        );
    }

    #[test]
    fn borrowing_yields_to_running_pretrain() {
        // Pretrain occupies the whole quota; the oversized debug job must
        // wait until it finishes.
        let s = ClusterScheduler::new(SchedulerConfig::with_reservation(100, 0.9));
        let out = s.run(vec![
            job(0, JobType::Pretrain, 90, 0, 100),
            job(1, JobType::Debug, 50, 10, 10),
        ]);
        let d = delays(&out);
        assert_eq!(d[1].1, 90.0);
    }

    #[test]
    fn pretrain_overflows_into_shared_pool() {
        // Quota 90, shared 10: a 95-GPU pretrain takes 90 reserved + 5 shared.
        let s = ClusterScheduler::new(SchedulerConfig::with_reservation(100, 0.9));
        let out = s.run(vec![
            job(0, JobType::Pretrain, 95, 0, 100),
            job(1, JobType::Evaluation, 8, 1, 10),
            job(2, JobType::Evaluation, 4, 1, 10),
        ]);
        let d = delays(&out);
        // Only 5 shared GPUs remain: the 4-GPU eval runs, the 8-GPU waits.
        assert_eq!(d[2].1, 0.0);
        assert_eq!(d[1].1, 99.0);
    }

    #[test]
    #[should_panic(expected = "demands")]
    fn oversized_job_rejected() {
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(8));
        s.run(vec![job(0, JobType::Pretrain, 16, 0, 10)]);
    }

    #[test]
    fn occupancy_accounting() {
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(10));
        // One job using all GPUs for the whole horizon → occupancy 1.0.
        let out = s.run(vec![job(0, JobType::Debug, 10, 0, 100)]);
        let occ = out.mean_occupancy(10);
        assert!((occ - 1.0).abs() < 1e-9, "occ = {occ}");
    }

    #[test]
    fn coalesce_eval_batches_floors_submit_times() {
        let mut jobs = vec![
            job(0, JobType::Evaluation, 1, 3700, 10),
            job(1, JobType::Evaluation, 1, 7300, 10),
            job(2, JobType::Pretrain, 8, 3700, 10),
        ];
        coalesce_eval_batches(&mut jobs, SimDuration::from_secs(3600));
        assert_eq!(jobs[0].submit, SimTime::from_secs(3600));
        assert_eq!(jobs[1].submit, SimTime::from_secs(7200));
        assert_eq!(
            jobs[2].submit,
            SimTime::from_secs(3700),
            "non-eval untouched"
        );
    }

    #[test]
    fn queue_delay_measured_from_submission() {
        let s = ClusterScheduler::new(SchedulerConfig::without_reservation(4));
        let out = s.run(vec![
            job(0, JobType::Debug, 4, 0, 100),
            job(1, JobType::Evaluation, 4, 30, 10),
        ]);
        assert_eq!(delays(&out)[1].1, 70.0);
    }
}
