//! The preemption ablation (§3.1).
//!
//! Prior DL schedulers guarantee priority by *preempting* running jobs.
//! The paper argues that "the considerable recovery overhead makes them
//! not applicable to LLM workloads": every preemption of a big job
//! discards the work since its last checkpoint and pays a restore cost on
//! resume. This module implements such a scheduler so the claim can be
//! measured — the experiment compares it against quota reservation on the
//! same trace and prices the wasted GPU time.

use std::collections::VecDeque;

use acme_sim_core::{EventQueue, SimDuration, SimTime};
use acme_workload::JobRecord;

use crate::config::SchedulerConfig;

/// Outcome of a preemptive schedule.
#[derive(Debug)]
pub struct PreemptionOutcome {
    /// Jobs with queue delays filled in (first-start delay), input order.
    pub jobs: Vec<JobRecord>,
    /// Total preemption events.
    pub preemptions: u32,
    /// GPU-seconds of work discarded plus restore overhead paid.
    pub wasted_gpu_seconds: f64,
    /// When the last job finished.
    pub finished_at: SimTime,
}

impl PreemptionOutcome {
    /// Wasted GPU time as a fraction of useful GPU time.
    pub fn waste_fraction(&self) -> f64 {
        let useful: f64 = self.jobs.iter().map(|j| j.gpu_seconds()).sum();
        self.wasted_gpu_seconds / useful
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Arrive(usize),
    /// Finish attempt carrying the generation at scheduling time; stale
    /// generations (the job was preempted meanwhile) are ignored.
    Finish(usize, u32),
}

#[derive(Debug, Clone, Copy)]
struct Running {
    started: SimTime,
    remaining_at_start: SimDuration,
    generation: u32,
}

/// A priority scheduler that preempts instead of reserving.
#[derive(Debug, Clone, Copy)]
pub struct PreemptiveScheduler {
    /// Total GPUs.
    pub total_gpus: u32,
    /// Checkpoint cadence of running jobs — work since the last checkpoint
    /// is lost on preemption.
    pub checkpoint_interval: SimDuration,
    /// Fixed cost to restore a preempted job (reload checkpoint,
    /// rebuild process groups).
    pub restore_overhead: SimDuration,
}

impl PreemptiveScheduler {
    /// Run the trace.
    ///
    /// # Panics
    /// Panics if a job demands more GPUs than the cluster has.
    pub fn run(&self, mut jobs: Vec<JobRecord>) -> PreemptionOutcome {
        for j in &jobs {
            assert!(
                j.gpus <= self.total_gpus,
                "job {} demands {} GPUs of {}",
                j.id,
                j.gpus,
                self.total_gpus
            );
        }
        let n = jobs.len();
        let mut queue = EventQueue::with_capacity(n + 1);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| jobs[i].submit);
        for &i in &order {
            queue.schedule(jobs[i].submit, Event::Arrive(i));
        }

        let mut waiting: Vec<VecDeque<usize>> = (0..SchedulerConfig::PRIORITY_LEVELS)
            .map(|_| VecDeque::new())
            .collect();
        let mut running: Vec<Option<Running>> = vec![None; n];
        let mut remaining: Vec<SimDuration> = jobs.iter().map(|j| j.duration).collect();
        let mut first_start: Vec<Option<SimTime>> = vec![None; n];
        let mut used: u32 = 0;
        let mut preemptions = 0u32;
        let mut wasted = 0.0f64;
        let mut finished_at = SimTime::ZERO;

        while let Some((now, event)) = queue.pop() {
            match event {
                Event::Arrive(i) => {
                    let p = SchedulerConfig::priority(jobs[i].job_type) as usize;
                    waiting[p].push_back(i);
                }
                Event::Finish(i, generation) => {
                    let Some(r) = running[i] else { continue };
                    if r.generation != generation {
                        continue; // stale: the job was preempted
                    }
                    running[i] = None;
                    used -= jobs[i].gpus;
                    remaining[i] = SimDuration::ZERO;
                    finished_at = finished_at.max(now);
                }
            }

            // Start waiting jobs in priority order, preempting lower
            // priorities when a higher-priority job doesn't fit.
            for p in 0..waiting.len() {
                let mut still_waiting = VecDeque::new();
                while let Some(i) = waiting[p].pop_front() {
                    let mut free = self.total_gpus - used;
                    if free < jobs[i].gpus {
                        // Try to evict strictly-lower-priority victims,
                        // most recently started first (least sunk work).
                        let mut victims: Vec<usize> = (0..n)
                            .filter(|&v| {
                                running[v].is_some()
                                    && SchedulerConfig::priority(jobs[v].job_type) as usize > p
                            })
                            .collect();
                        victims.sort_by_key(|&v| std::cmp::Reverse(running[v].unwrap().started));
                        let mut evict = Vec::new();
                        for v in victims {
                            if free >= jobs[i].gpus {
                                break;
                            }
                            free += jobs[v].gpus;
                            evict.push(v);
                        }
                        if free >= jobs[i].gpus {
                            for v in evict {
                                let r = running[v].take().unwrap();
                                used -= jobs[v].gpus;
                                preemptions += 1;
                                // Progress made this run, minus the tail
                                // since the last checkpoint (lost).
                                let ran = now - r.started;
                                let lost = SimDuration::from_micros(
                                    ran.as_micros() % self.checkpoint_interval.as_micros().max(1),
                                );
                                let kept = ran.saturating_sub(lost);
                                remaining[v] = r.remaining_at_start.saturating_sub(kept)
                                    + self.restore_overhead;
                                wasted += jobs[v].gpus as f64
                                    * (lost + self.restore_overhead).as_secs_f64();
                                let vp = SchedulerConfig::priority(jobs[v].job_type) as usize;
                                waiting[vp].push_back(v);
                            }
                        }
                    }
                    if self.total_gpus - used >= jobs[i].gpus {
                        let generation = first_start[i].map_or(0, |_| 1) + preemptions; // unique-enough
                        running[i] = Some(Running {
                            started: now,
                            remaining_at_start: remaining[i],
                            generation,
                        });
                        used += jobs[i].gpus;
                        if first_start[i].is_none() {
                            first_start[i] = Some(now);
                            jobs[i].queue_delay = now.saturating_since(jobs[i].submit);
                        }
                        queue.schedule_in(remaining[i], Event::Finish(i, generation));
                    } else {
                        still_waiting.push_back(i);
                    }
                }
                waiting[p] = still_waiting;
            }
        }

        assert!(
            running.iter().all(Option::is_none),
            "jobs still running after the event queue drained"
        );
        PreemptionOutcome {
            jobs,
            preemptions,
            wasted_gpu_seconds: wasted,
            finished_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acme_workload::job::Cluster;
    use acme_workload::{JobStatus, JobType};

    fn job(id: u64, ty: JobType, gpus: u32, submit_s: u64, dur_s: u64) -> JobRecord {
        JobRecord {
            id,
            cluster: Cluster::Kalos,
            job_type: ty,
            submit: SimTime::from_secs(submit_s),
            queue_delay: SimDuration::ZERO,
            duration: SimDuration::from_secs(dur_s),
            gpus,
            status: JobStatus::Completed,
        }
    }

    fn sched() -> PreemptiveScheduler {
        PreemptiveScheduler {
            total_gpus: 100,
            checkpoint_interval: SimDuration::from_secs(600),
            restore_overhead: SimDuration::from_secs(120),
        }
    }

    #[test]
    fn no_contention_no_preemption() {
        let out = sched().run(vec![
            job(0, JobType::Evaluation, 10, 0, 100),
            job(1, JobType::Pretrain, 50, 10, 100),
        ]);
        assert_eq!(out.preemptions, 0);
        assert_eq!(out.wasted_gpu_seconds, 0.0);
        assert!(out.jobs.iter().all(|j| j.queue_delay.is_zero()));
    }

    #[test]
    fn pretrain_preempts_eval_and_pays_recovery() {
        // Eval holds 80 GPUs; a pretrain wanting 90 arrives mid-run.
        let out = sched().run(vec![
            job(0, JobType::Evaluation, 80, 0, 2_000),
            job(1, JobType::Pretrain, 90, 300, 1_000),
        ]);
        assert_eq!(out.preemptions, 1);
        // The pretrain starts immediately at its arrival.
        assert!(out.jobs[1].queue_delay.is_zero());
        // The eval lost its sub-checkpoint progress (300 s) plus restore.
        assert!(
            (out.wasted_gpu_seconds - 80.0 * (300.0 + 120.0)).abs() < 1.0,
            "wasted {}",
            out.wasted_gpu_seconds
        );
        // The eval still completes eventually.
        assert!(out.finished_at > SimTime::from_secs(2_000));
    }

    #[test]
    fn checkpointing_bounds_the_loss() {
        // With a 600 s interval, a job preempted at t=1500 loses only 300 s.
        let out = sched().run(vec![
            job(0, JobType::Evaluation, 80, 0, 10_000),
            job(1, JobType::Pretrain, 90, 1_500, 100),
        ]);
        let expected = 80.0 * (300.0 + 120.0);
        assert!(
            (out.wasted_gpu_seconds - expected).abs() < 1.0,
            "wasted {} vs {expected}",
            out.wasted_gpu_seconds
        );
    }

    #[test]
    fn equal_priority_never_preempts() {
        let out = sched().run(vec![
            job(0, JobType::Pretrain, 90, 0, 1_000),
            job(1, JobType::Pretrain, 90, 100, 1_000),
        ]);
        assert_eq!(out.preemptions, 0);
        assert_eq!(out.jobs[1].queue_delay, SimDuration::from_secs(900));
    }

    #[test]
    fn most_recent_victim_evicted_first() {
        // Two evals: old (started t=0) and young (t=100). A pretrain needing
        // only the young one's GPUs must evict the young one.
        let out = sched().run(vec![
            job(0, JobType::Evaluation, 40, 0, 5_000),
            job(1, JobType::Evaluation, 40, 100, 5_000),
            job(2, JobType::Pretrain, 60, 200, 100),
        ]);
        assert_eq!(out.preemptions, 1);
        // The old eval ran undisturbed: it finishes at exactly t=5000.
        // The young one finishes later than its undisturbed time.
        assert!(out.finished_at > SimTime::from_secs(5_100));
    }

    #[test]
    fn repeated_preemption_compounds_waste() {
        // A big eval repeatedly trampled by short pretrains.
        let mut jobs = vec![job(0, JobType::Evaluation, 80, 0, 20_000)];
        for k in 0..5u64 {
            jobs.push(job(k + 1, JobType::Pretrain, 90, 1_000 + k * 2_000, 300));
        }
        let out = sched().run(jobs);
        assert_eq!(out.preemptions, 5);
        assert!(
            out.waste_fraction() > 0.05,
            "waste {:.3}",
            out.waste_fraction()
        );
    }
}
