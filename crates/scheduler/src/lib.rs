//! The cluster scheduler simulation.
//!
//! Acme's production schedulers (Slurm on Seren, Kubernetes on Kalos) share
//! one policy that shapes Figure 6: **quota reservation** guarantees
//! resources to large pretraining jobs, evaluation trials run at the lowest
//! priority on the limited remainder, and a best-effort mechanism lets
//! oversized non-pretraining jobs borrow idle reserved capacity (§2.2).
//! The result is the paper's headline inversion — evaluation jobs have the
//! *smallest* demands and *shortest* runtimes yet the *longest* queue
//! delays.
//!
//! [`sim::ClusterScheduler`] is a discrete-event simulator implementing that
//! policy (with a switch to disable reservation for the ablation), and
//! [`sim::coalesce_eval_batches`] models the paper's observation that
//! evaluation trials are submitted in simultaneous batches.

#![warn(missing_docs)]

pub mod config;
pub mod preempt;
pub mod sim;

pub use config::SchedulerConfig;
pub use preempt::{PreemptionOutcome, PreemptiveScheduler};
pub use sim::{coalesce_eval_batches, ClusterScheduler, ScheduleOutcome};
