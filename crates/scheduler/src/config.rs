//! Scheduler policy configuration.

use acme_workload::JobType;

/// Static policy knobs for one cluster's scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Total schedulable GPUs.
    pub total_gpus: u32,
    /// GPUs reserved for pretraining (the quota). Must be ≤ `total_gpus`.
    pub reserved_gpus: u32,
    /// When false, the reservation is ignored and all jobs share one pool
    /// (the Figure-6 ablation).
    pub reservation_enabled: bool,
    /// Whether non-pretraining jobs larger than the shared pool may borrow
    /// *idle* reserved GPUs (the best-effort mechanism of §2.2).
    pub best_effort_borrowing: bool,
}

impl SchedulerConfig {
    /// A reservation policy holding back `reserved_fraction` of the GPUs
    /// for pretraining, with best-effort borrowing on.
    ///
    /// # Panics
    /// Panics if the fraction is outside `[0, 1]` or `total_gpus == 0`.
    pub fn with_reservation(total_gpus: u32, reserved_fraction: f64) -> Self {
        assert!(total_gpus > 0, "scheduler needs at least one GPU");
        assert!(
            (0.0..=1.0).contains(&reserved_fraction),
            "bad reserved fraction {reserved_fraction}"
        );
        SchedulerConfig {
            total_gpus,
            reserved_gpus: (total_gpus as f64 * reserved_fraction).round() as u32,
            reservation_enabled: true,
            best_effort_borrowing: true,
        }
    }

    /// One undifferentiated pool (the ablation baseline).
    pub fn without_reservation(total_gpus: u32) -> Self {
        assert!(total_gpus > 0, "scheduler needs at least one GPU");
        SchedulerConfig {
            total_gpus,
            reserved_gpus: 0,
            reservation_enabled: false,
            best_effort_borrowing: false,
        }
    }

    /// GPUs outside the reservation.
    pub fn shared_gpus(&self) -> u32 {
        if self.reservation_enabled {
            self.total_gpus - self.reserved_gpus
        } else {
            self.total_gpus
        }
    }

    /// Scheduling priority: lower value schedules first. Pretraining is
    /// guaranteed, evaluation is explicitly lowest (§3.2).
    pub fn priority(job_type: JobType) -> u8 {
        match job_type {
            JobType::Pretrain => 0,
            JobType::Sft | JobType::Mllm | JobType::Debug | JobType::Other => 1,
            JobType::Evaluation => 2,
        }
    }

    /// Number of distinct priority levels.
    pub const PRIORITY_LEVELS: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_split() {
        let c = SchedulerConfig::with_reservation(1000, 0.9);
        assert_eq!(c.reserved_gpus, 900);
        assert_eq!(c.shared_gpus(), 100);
        assert!(c.reservation_enabled);
    }

    #[test]
    fn no_reservation_single_pool() {
        let c = SchedulerConfig::without_reservation(512);
        assert_eq!(c.shared_gpus(), 512);
        assert_eq!(c.reserved_gpus, 0);
    }

    #[test]
    fn priorities_ordered() {
        assert!(
            SchedulerConfig::priority(JobType::Pretrain)
                < SchedulerConfig::priority(JobType::Debug)
        );
        assert!(
            SchedulerConfig::priority(JobType::Debug)
                < SchedulerConfig::priority(JobType::Evaluation)
        );
        assert_eq!(
            SchedulerConfig::priority(JobType::Sft),
            SchedulerConfig::priority(JobType::Mllm)
        );
    }

    #[test]
    #[should_panic(expected = "bad reserved fraction")]
    fn rejects_bad_fraction() {
        SchedulerConfig::with_reservation(10, 1.5);
    }
}
