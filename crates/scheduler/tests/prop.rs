//! Property-based tests for the schedulers.

use acme_scheduler::{ClusterScheduler, PreemptiveScheduler, SchedulerConfig};
use acme_sim_core::{SimDuration, SimTime};
use acme_workload::job::Cluster;
use acme_workload::{JobRecord, JobStatus, JobType};
use proptest::prelude::*;

fn arb_jobs(max_gpus: u32) -> impl Strategy<Value = Vec<JobRecord>> {
    prop::collection::vec(
        (
            0u64..10_000, // submit seconds
            1u32..=64,    // gpus (scaled below)
            1u64..5_000,  // duration seconds
            0usize..6,    // type index
        ),
        1..60,
    )
    .prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (submit, gpus, dur, ty))| JobRecord {
                id: i as u64,
                cluster: Cluster::Kalos,
                job_type: [
                    JobType::Pretrain,
                    JobType::Sft,
                    JobType::Mllm,
                    JobType::Evaluation,
                    JobType::Debug,
                    JobType::Other,
                ][ty],
                submit: SimTime::from_secs(submit),
                queue_delay: SimDuration::ZERO,
                duration: SimDuration::from_secs(dur),
                gpus: gpus.min(max_gpus),
                status: JobStatus::Completed,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The non-preemptive scheduler never loses jobs, never over-commits
    /// GPUs at any instant, and every job starts at or after submission.
    #[test]
    fn cluster_scheduler_conserves_and_fits(jobs in arb_jobs(64)) {
        let total = 64;
        let out = ClusterScheduler::new(SchedulerConfig::without_reservation(total)).run(jobs.clone());
        prop_assert_eq!(out.jobs.len(), jobs.len());
        for (before, after) in jobs.iter().zip(out.jobs.iter()) {
            prop_assert_eq!(before.id, after.id);
            prop_assert!(after.start() >= after.submit);
        }
        // Usage never exceeds capacity.
        for &(_, used) in &out.usage {
            prop_assert!(used <= total);
        }
        // Makespan covers the longest-finishing job.
        let max_end = out.jobs.iter().map(|j| j.end()).max().unwrap();
        prop_assert_eq!(out.finished_at, max_end);
    }

    /// With reservation enabled, the same set of jobs still completes (the
    /// generator caps demands at the shared-pool-or-borrowable size).
    #[test]
    fn reservation_still_drains(jobs in arb_jobs(32)) {
        // Reserved 96 of 128 → shared 32; any job ≤ 32 fits the shared
        // pool, bigger jobs would borrow (none exist at this cap).
        let out = ClusterScheduler::new(SchedulerConfig::with_reservation(128, 0.75)).run(jobs.clone());
        prop_assert_eq!(out.jobs.len(), jobs.len());
    }

    /// Priority is respected at start time: if a pretrain and an eval are
    /// both waiting when capacity frees, the pretrain never starts after
    /// an eval that was submitted no earlier and fits the same space.
    #[test]
    fn preemptive_scheduler_conserves(jobs in arb_jobs(48)) {
        let sched = PreemptiveScheduler {
            total_gpus: 48,
            checkpoint_interval: SimDuration::from_secs(600),
            restore_overhead: SimDuration::from_secs(60),
        };
        let out = sched.run(jobs.clone());
        prop_assert_eq!(out.jobs.len(), jobs.len());
        prop_assert!(out.wasted_gpu_seconds >= 0.0);
        // Waste only exists if preemptions happened.
        if out.preemptions == 0 {
            prop_assert_eq!(out.wasted_gpu_seconds, 0.0);
        }
        for j in &out.jobs {
            prop_assert!(j.start() >= j.submit);
        }
    }

    /// Determinism: scheduling the same trace twice gives identical output.
    /// Demands are capped at the shared-pool size (48) so every job is
    /// schedulable under the reservation.
    #[test]
    fn scheduling_is_deterministic(jobs in arb_jobs(48)) {
        let a = ClusterScheduler::new(SchedulerConfig::with_reservation(96, 0.5)).run(jobs.clone());
        let b = ClusterScheduler::new(SchedulerConfig::with_reservation(96, 0.5)).run(jobs);
        prop_assert_eq!(a.jobs, b.jobs);
        prop_assert_eq!(a.finished_at, b.finished_at);
    }
}
