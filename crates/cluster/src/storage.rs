//! The shared parallel file system and model-loading contention.
//!
//! Acme uses an all-NVMe shared parallel FS (§2.2). What matters for the
//! evaluation-scheduling system is Figure 16 (left): on Seren, model loading
//! rides a 25 Gb/s storage NIC per node, so loading speed per trial
//! collapses as concurrent single-GPU trials pile onto one node (1 → 8) and
//! then *stabilizes* as trials spread across nodes (8 → 256) because each
//! node's NIC — not the NVMe backend — is the bottleneck.
//!
//! Loading from node-local shared memory (the trial coordinator's precursor
//! jobs, §6.2) instead rides host-memory/PCIe bandwidth, orders of magnitude
//! higher.

/// The shared parallel file system, as seen by one cluster.
#[derive(Debug, Clone, Copy)]
pub struct SharedStorage {
    /// Per-node storage NIC bandwidth, GB/s (25 Gb/s ≈ 3.125 GB/s on Seren).
    pub node_nic_gbps: f64,
    /// Aggregate backend bandwidth, GB/s (all-NVMe: effectively never the
    /// bottleneck at Acme's scale).
    pub backend_gbps: f64,
    /// Max single-stream throughput, GB/s (one reader cannot saturate the
    /// NIC due to request pipelining limits).
    pub single_stream_gbps: f64,
    /// Node-local shared-memory read bandwidth, GB/s (used after the
    /// coordinator's precursor jobs stage the model into `/dev/shm`).
    pub local_shm_gbps: f64,
}

impl SharedStorage {
    /// Seren's storage path: 25 Gb/s shared storage NIC per node.
    pub fn seren() -> Self {
        SharedStorage {
            node_nic_gbps: 25.0 / 8.0,
            backend_gbps: 400.0,
            single_stream_gbps: 2.4,
            local_shm_gbps: 20.0,
        }
    }

    /// Kalos's storage path: a dedicated 200 Gb/s storage HCA per node.
    pub fn kalos() -> Self {
        SharedStorage {
            node_nic_gbps: 200.0 / 8.0,
            backend_gbps: 800.0,
            single_stream_gbps: 6.0,
            local_shm_gbps: 20.0,
        }
    }

    /// Per-trial remote loading speed (GB/s) when `trials_per_node` trials
    /// read concurrently on each of `nodes` nodes.
    ///
    /// The speed is the minimum of three caps: the single-stream limit, the
    /// fair share of the node NIC, and the fair share of the backend.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn per_trial_speed_gbps(&self, trials_per_node: u32, nodes: u32) -> f64 {
        assert!(
            trials_per_node > 0 && nodes > 0,
            "need at least one trial and node"
        );
        let total_trials = (trials_per_node as f64) * (nodes as f64);
        let nic_share = self.node_nic_gbps / trials_per_node as f64;
        let backend_share = self.backend_gbps / total_trials;
        self.single_stream_gbps.min(nic_share).min(backend_share)
    }

    /// Time in seconds to load `size_gb` from remote storage under the given
    /// concurrency.
    pub fn remote_load_secs(&self, size_gb: f64, trials_per_node: u32, nodes: u32) -> f64 {
        size_gb / self.per_trial_speed_gbps(trials_per_node, nodes)
    }

    /// Time in seconds to load `size_gb` from node-local shared memory,
    /// shared fairly among `readers` concurrent readers on the node.
    pub fn local_load_secs(&self, size_gb: f64, readers: u32) -> f64 {
        assert!(readers > 0, "need at least one reader");
        let per_reader = (self.local_shm_gbps / readers as f64).min(self.local_shm_gbps);
        size_gb / per_reader
    }

    /// A copy of this storage with the *remote* path degraded by `factor`
    /// (≥ 1): NIC, backend, and single-stream ceilings all divide by it.
    /// Node-local shared-memory bandwidth is untouched — degradation models
    /// a sick network or storage backend, not the node itself. Fault
    /// windows in the evaluation storm use this to price re-staging a model
    /// while the storage path is unhealthy.
    ///
    /// # Panics
    /// Panics if `factor < 1`.
    pub fn degraded(&self, factor: f64) -> SharedStorage {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        SharedStorage {
            node_nic_gbps: self.node_nic_gbps / factor,
            backend_gbps: self.backend_gbps / factor,
            single_stream_gbps: self.single_stream_gbps / factor,
            local_shm_gbps: self.local_shm_gbps,
        }
    }

    /// The Figure-16-left series: average per-trial loading speed as the
    /// number of concurrent single-GPU trials grows, packing 8 trials per
    /// node before spilling to the next node. Returns `(total_trials,
    /// GB/s)` pairs.
    pub fn loading_speed_series(&self, trial_counts: &[u32]) -> Vec<(u32, f64)> {
        trial_counts
            .iter()
            .map(|&t| {
                let nodes = t.div_ceil(8).max(1);
                let per_node = t.div_ceil(nodes).max(1);
                (t, self.per_trial_speed_gbps(per_node, nodes))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_trial_hits_single_stream_cap() {
        let s = SharedStorage::seren();
        let v = s.per_trial_speed_gbps(1, 1);
        assert_eq!(v, s.single_stream_gbps);
    }

    #[test]
    fn eight_trials_on_one_node_share_the_nic() {
        let s = SharedStorage::seren();
        let v = s.per_trial_speed_gbps(8, 1);
        assert!((v - s.node_nic_gbps / 8.0).abs() < 1e-12);
        // A large drop from the single-trial speed (Figure 16 left).
        assert!(v < s.per_trial_speed_gbps(1, 1) / 4.0);
    }

    #[test]
    fn speed_stabilizes_from_8_to_256_gpus() {
        // Figure 16 left: 8..256 trials (8 per node) all see the same share.
        let s = SharedStorage::seren();
        let series = s.loading_speed_series(&[8, 16, 32, 64, 128, 256]);
        let first = series[0].1;
        for &(n, v) in &series {
            assert!((v - first).abs() < 1e-9, "speed at {n} trials drifted: {v}");
        }
    }

    #[test]
    fn series_is_monotone_nonincreasing() {
        let s = SharedStorage::seren();
        let series = s.loading_speed_series(&[1, 2, 4, 8, 16, 64, 256]);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn kalos_dedicated_hca_is_far_faster_under_contention() {
        let seren = SharedStorage::seren();
        let kalos = SharedStorage::kalos();
        assert!(kalos.per_trial_speed_gbps(8, 1) > 4.0 * seren.per_trial_speed_gbps(8, 1));
    }

    #[test]
    fn local_shm_beats_remote() {
        let s = SharedStorage::seren();
        // A 14 GB 7B-model checkpoint, 8 concurrent readers.
        let remote = s.remote_load_secs(14.0, 8, 1);
        let local = s.local_load_secs(14.0, 8);
        assert!(
            local < remote / 5.0,
            "local {local:.1}s vs remote {remote:.1}s"
        );
    }

    #[test]
    fn degraded_slows_remote_but_not_shm() {
        let s = SharedStorage::seren();
        let sick = s.degraded(4.0);
        assert!(
            (sick.remote_load_secs(14.0, 1, 1) - 4.0 * s.remote_load_secs(14.0, 1, 1)).abs() < 1e-9
        );
        assert_eq!(sick.local_load_secs(14.0, 8), s.local_load_secs(14.0, 8));
    }

    #[test]
    fn backend_caps_extreme_fanout() {
        let s = SharedStorage {
            backend_gbps: 10.0,
            ..SharedStorage::seren()
        };
        // 100 nodes × 1 trial: backend share (0.1) below nic and stream caps.
        let v = s.per_trial_speed_gbps(1, 100);
        assert!((v - 0.1).abs() < 1e-12);
    }
}
