//! Server- and datacenter-level power accounting.
//!
//! Calibrated to §3.4 and Appendix A.3:
//!
//! * Figure 9 — in a Seren GPU server, GPUs draw ≈ 2/3 of total power, CPUs
//!   11.2%, the PSU loses 9.6% in conversion, and the remainder goes to
//!   DRAM, fans, NICs and drives;
//! * Figure 8(b) — GPU servers average ≈ 5× the power of CPU-only servers;
//! * Appendix A.3 — PUE 1.25, 30.61% carbon-free energy, 0.478 tCO₂e/MWh,
//!   Seren ≈ 673 MWh in May 2023 → 321.7 tCO₂e effective emissions.

use crate::node::Node;

/// Instantaneous power split for one GPU server, W.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerBreakdown {
    /// All GPUs.
    pub gpus_w: f64,
    /// Both CPU packages.
    pub cpus_w: f64,
    /// DRAM.
    pub memory_w: f64,
    /// Fans and cooling internals.
    pub fans_w: f64,
    /// NICs, drives, BMC and other peripherals.
    pub other_w: f64,
    /// PSU conversion loss.
    pub psu_loss_w: f64,
}

impl ServerPowerBreakdown {
    /// Wall power: everything including conversion loss.
    pub fn total_w(&self) -> f64 {
        self.gpus_w + self.cpus_w + self.memory_w + self.fans_w + self.other_w + self.psu_loss_w
    }

    /// `(label, watts, fraction_of_total)` rows for rendering Figure 9.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        let total = self.total_w();
        [
            ("GPUs", self.gpus_w),
            ("CPUs", self.cpus_w),
            ("memory", self.memory_w),
            ("fans", self.fans_w),
            ("other", self.other_w),
            ("PSU loss", self.psu_loss_w),
        ]
        .into_iter()
        .map(|(name, w)| (name, w, w / total))
        .collect()
    }
}

/// The affine per-component model mapping node state to wall power.
#[derive(Debug, Clone, Copy)]
pub struct ServerPowerModel {
    /// CPU package idle power (both sockets), W.
    pub cpu_idle_w: f64,
    /// CPU package max additional power at 100% utilization, W.
    pub cpu_dynamic_w: f64,
    /// DRAM power, W (roughly constant for registered DIMMs).
    pub memory_w: f64,
    /// Fan power at idle, W.
    pub fans_idle_w: f64,
    /// Additional fan power at full thermal load, W.
    pub fans_dynamic_w: f64,
    /// Peripheral power, W.
    pub other_w: f64,
    /// PSU conversion-loss fraction of delivered power.
    pub psu_loss_fraction: f64,
}

impl Default for ServerPowerModel {
    fn default() -> Self {
        // Calibrated so that an *average* busy Seren node lands on the
        // Figure-9 split: GPUs ≈ 2/3, CPUs ≈ 11.2%, PSU ≈ 9.6%.
        ServerPowerModel {
            cpu_idle_w: 200.0,
            cpu_dynamic_w: 420.0,
            memory_w: 240.0,
            fans_idle_w: 60.0,
            fans_dynamic_w: 90.0,
            other_w: 60.0,
            psu_loss_fraction: 0.106,
        }
    }
}

impl ServerPowerModel {
    /// Evaluate the breakdown for a node's current state.
    pub fn breakdown(&self, node: &Node) -> ServerPowerBreakdown {
        let gpus_w = node.gpu_power_w();
        let cpus_w = self.cpu_idle_w + self.cpu_dynamic_w * node.cpu_util();
        // Fans track the thermal load, dominated by the GPUs.
        let max_gpu_w = node.spec().gpus as f64 * node.spec().gpu.max_power_w;
        let fans_w = self.fans_idle_w + self.fans_dynamic_w * (gpus_w / max_gpu_w);
        let delivered = gpus_w + cpus_w + self.memory_w + fans_w + self.other_w;
        ServerPowerBreakdown {
            gpus_w,
            cpus_w,
            memory_w: self.memory_w,
            fans_w,
            other_w: self.other_w,
            psu_loss_w: delivered * self.psu_loss_fraction,
        }
    }

    /// Power of a CPU-only server at the given utilization, W. Figure 8(b)
    /// includes six such servers in Seren at ≈ 1/5 of GPU-server power.
    pub fn cpu_server_w(&self, cpu_util: f64) -> f64 {
        let delivered = self.cpu_idle_w
            + self.cpu_dynamic_w * cpu_util.clamp(0.0, 1.0)
            + self.memory_w
            + self.fans_idle_w
            + self.other_w;
        delivered * (1.0 + self.psu_loss_fraction)
    }
}

/// Datacenter-level energy and carbon accounting (Appendix A.3).
#[derive(Debug, Clone, Copy)]
pub struct CarbonModel {
    /// Power usage effectiveness.
    pub pue: f64,
    /// Fraction of energy from carbon-free sources (informational; already
    /// folded into the effective emission rate below).
    pub carbon_free_fraction: f64,
    /// *Effective* emission rate, tCO₂e per MWh consumed. The appendix
    /// quotes 0.478 tCO₂e/MWh as the footprint rate the datacenter
    /// achieves after its 30.61% carbon-free mix.
    pub tco2e_per_mwh: f64,
}

impl Default for CarbonModel {
    fn default() -> Self {
        CarbonModel {
            pue: 1.25,
            carbon_free_fraction: 0.3061,
            tco2e_per_mwh: 0.478,
        }
    }
}

impl CarbonModel {
    /// Facility energy (MWh) for the given IT energy (MWh).
    pub fn facility_mwh(&self, it_mwh: f64) -> f64 {
        it_mwh * self.pue
    }

    /// Effective emissions (tCO₂e) for the given consumed energy (MWh).
    ///
    /// The appendix multiplies the measured energy directly by the
    /// effective 0.478 tCO₂e/MWh rate (673 MWh → 321.7 tCO₂e).
    pub fn effective_tco2e(&self, consumed_mwh: f64) -> f64 {
        consumed_mwh * self.tco2e_per_mwh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuActivity;
    use crate::spec::ClusterSpec;

    /// A node at the cluster's *average* operating point — Figure 9 reports
    /// the average power split, which folds in partially idle GPUs.
    fn busy_node() -> Node {
        let mut n = Node::new(ClusterSpec::seren().node);
        for i in 0..8 {
            n.gpu_mut(i).set_activity(GpuActivity {
                sm_active: 0.7,
                tensor_active: 0.15,
                memory_used_gb: 62.0,
            });
        }
        n.set_cpu_util(0.55);
        n
    }

    #[test]
    fn busy_server_matches_figure9_split() {
        let b = ServerPowerModel::default().breakdown(&busy_node());
        let total = b.total_w();
        let gpu_frac = b.gpus_w / total;
        let cpu_frac = b.cpus_w / total;
        let psu_frac = b.psu_loss_w / total;
        assert!(
            (gpu_frac - 2.0 / 3.0).abs() < 0.05,
            "gpu share {gpu_frac:.3}"
        );
        assert!((cpu_frac - 0.112).abs() < 0.03, "cpu share {cpu_frac:.3}");
        assert!((psu_frac - 0.096).abs() < 0.02, "psu share {psu_frac:.3}");
    }

    #[test]
    fn rows_sum_to_total() {
        let b = ServerPowerModel::default().breakdown(&busy_node());
        let sum: f64 = b.rows().iter().map(|&(_, w, _)| w).sum();
        assert!((sum - b.total_w()).abs() < 1e-9);
        let frac_sum: f64 = b.rows().iter().map(|&(_, _, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_server_roughly_5x_cpu_server() {
        let m = ServerPowerModel::default();
        let gpu_server = m.breakdown(&busy_node()).total_w();
        let cpu_server = m.cpu_server_w(0.3);
        let ratio = gpu_server / cpu_server;
        assert!((4.0..7.0).contains(&ratio), "ratio = {ratio:.2}");
    }

    #[test]
    fn idle_server_draws_much_less() {
        let m = ServerPowerModel::default();
        let idle = m.breakdown(&Node::new(ClusterSpec::seren().node)).total_w();
        let busy = m.breakdown(&busy_node()).total_w();
        assert!(idle < busy * 0.4, "idle {idle:.0} vs busy {busy:.0}");
        // Idle still pays the 8×60 W GPU floor.
        assert!(idle > 480.0);
    }

    #[test]
    fn carbon_model_reproduces_appendix_a3() {
        let c = CarbonModel::default();
        // Seren consumed ≈ 673 MWh in May 2023 → 321.7 tCO₂e effective.
        let t = c.effective_tco2e(673.0);
        assert!((t - 321.7).abs() < 1.0, "tCO2e = {t:.1}");
        assert_eq!(c.facility_mwh(100.0), 125.0);
    }
}
