//! Hot-spare pool accounting.
//!
//! The §6.1 recovery story quietly assumes cordoning is free: a faulty
//! node leaves, the job restarts at full width. In a real fleet a cordon
//! only preserves capacity while a *hot spare* — a healthy, powered,
//! fabric-attached node held in reserve — can take the cordoned node's
//! place. Once the pool is drained, every further cordon shrinks the
//! usable fleet and the training job must either stall or continue at
//! reduced data-parallel width. This module is the bookkeeping for that
//! trade-off; the recovery orchestrator consults it to choose between
//! substitution and graceful degradation.

/// A pool of hot spare nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparePool {
    total: u32,
    drawn: u32,
}

impl SparePool {
    /// A pool holding `total` spares.
    pub fn new(total: u32) -> Self {
        SparePool { total, drawn: 0 }
    }

    /// The operational default for a Kalos-sized pretraining fleet: two
    /// hot spares — enough for the common single-node loss, not for a
    /// storm.
    pub fn kalos_default() -> Self {
        SparePool::new(2)
    }

    /// Spares provisioned.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Spares already in service.
    pub fn drawn(&self) -> u32 {
        self.drawn
    }

    /// Spares still available.
    pub fn available(&self) -> u32 {
        self.total - self.drawn
    }

    /// Whether the pool is empty.
    pub fn exhausted(&self) -> bool {
        self.drawn >= self.total
    }

    /// Take a spare to cover a cordoned node. Returns `true` when a spare
    /// was available (capacity preserved), `false` when the pool is
    /// exhausted (the fleet shrinks).
    pub fn draw(&mut self) -> bool {
        if self.exhausted() {
            return false;
        }
        self.drawn += 1;
        true
    }

    /// Return `n` repaired nodes to the pool (clamped at `total`).
    pub fn restock(&mut self, n: u32) {
        self.drawn = self.drawn.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_until_exhausted() {
        let mut p = SparePool::new(2);
        assert_eq!(p.available(), 2);
        assert!(p.draw());
        assert!(p.draw());
        assert!(p.exhausted());
        assert!(!p.draw(), "drained pool must refuse");
        assert_eq!(p.drawn(), 2);
        assert_eq!(p.available(), 0);
    }

    #[test]
    fn restock_returns_capacity_and_clamps() {
        let mut p = SparePool::new(3);
        assert!(p.draw());
        assert!(p.draw());
        p.restock(1);
        assert_eq!(p.available(), 2);
        p.restock(10);
        assert_eq!(p.available(), 3, "restock clamps at total");
        assert_eq!(p.drawn(), 0);
    }

    #[test]
    fn zero_pool_is_always_exhausted() {
        let mut p = SparePool::new(0);
        assert!(p.exhausted());
        assert!(!p.draw());
    }

    #[test]
    fn kalos_default_is_small() {
        let p = SparePool::kalos_default();
        assert!(p.total() >= 1 && p.total() <= 4);
    }
}
