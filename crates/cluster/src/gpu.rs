//! The per-GPU activity → power model.
//!
//! DCGM exposes SM activity and tensor-pipe activity as fractions; the
//! paper's Figure 8(a) shows idle GPUs pinned at ~60 W, 12–22% of GPUs above
//! the 400 W TDP, and a tail reaching 600 W. We model power as an affine
//! function of SM activity up to TDP, with tensor-core activity pushing the
//! draw into the above-TDP region — matching the observation that the
//! over-TDP GPUs are the ones running dense, highly optimized LLM kernels.

use crate::spec::GpuSpec;

/// An instantaneous activity snapshot for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuActivity {
    /// `PROF_SM_ACTIVE`: fraction of cycles any SM was busy (0–1).
    pub sm_active: f64,
    /// `PROF_PIPE_TENSOR_ACTIVE`: tensor pipe activity (0–1), ≤ `sm_active`.
    pub tensor_active: f64,
    /// Framebuffer memory in use, GB.
    pub memory_used_gb: f64,
}

impl GpuActivity {
    /// A fully idle GPU.
    pub const IDLE: GpuActivity = GpuActivity {
        sm_active: 0.0,
        tensor_active: 0.0,
        memory_used_gb: 0.0,
    };

    /// Clamp all fields into their physical ranges against `spec`.
    pub fn clamped(self, spec: &GpuSpec) -> GpuActivity {
        let sm = self.sm_active.clamp(0.0, 1.0);
        GpuActivity {
            sm_active: sm,
            tensor_active: self.tensor_active.clamp(0.0, sm),
            memory_used_gb: self.memory_used_gb.clamp(0.0, spec.memory_gb),
        }
    }
}

/// One GPU: spec plus current activity.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    spec: GpuSpec,
    activity: GpuActivity,
}

impl GpuDevice {
    /// A new, idle device.
    pub fn new(spec: GpuSpec) -> Self {
        GpuDevice {
            spec,
            activity: GpuActivity::IDLE,
        }
    }

    /// The hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current activity.
    pub fn activity(&self) -> GpuActivity {
        self.activity
    }

    /// Replace the activity snapshot (clamped to physical ranges).
    pub fn set_activity(&mut self, activity: GpuActivity) {
        self.activity = activity.clamped(&self.spec);
    }

    /// Return to idle.
    pub fn release(&mut self) {
        self.activity = GpuActivity::IDLE;
    }

    /// Whether any work is resident.
    pub fn is_idle(&self) -> bool {
        self.activity.sm_active == 0.0 && self.activity.memory_used_gb == 0.0
    }

    /// Instantaneous power draw, W.
    ///
    /// * idle → `idle_power_w` (~60 W);
    /// * SM activity alone scales linearly toward TDP;
    /// * tensor-pipe activity adds the above-TDP excursion, capped at
    ///   `max_power_w` (~600 W).
    pub fn power_w(&self) -> f64 {
        let s = &self.spec;
        let sm_term = (s.tdp_w - s.idle_power_w) * self.activity.sm_active;
        let tc_term = (s.max_power_w - s.tdp_w) * self.activity.tensor_active;
        (s.idle_power_w + sm_term + tc_term).min(s.max_power_w)
    }

    /// Fraction of framebuffer in use.
    pub fn memory_fraction(&self) -> f64 {
        self.activity.memory_used_gb / self.spec.memory_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn dev() -> GpuDevice {
        GpuDevice::new(GpuSpec::a100_sxm_80gb())
    }

    #[test]
    fn idle_draws_idle_power() {
        let g = dev();
        assert!(g.is_idle());
        assert_eq!(g.power_w(), 60.0);
    }

    #[test]
    fn full_sm_activity_reaches_tdp() {
        let mut g = dev();
        g.set_activity(GpuActivity {
            sm_active: 1.0,
            tensor_active: 0.0,
            memory_used_gb: 40.0,
        });
        assert_eq!(g.power_w(), 400.0);
        assert!(!g.is_idle());
    }

    #[test]
    fn tensor_activity_exceeds_tdp() {
        let mut g = dev();
        g.set_activity(GpuActivity {
            sm_active: 1.0,
            tensor_active: 0.8,
            memory_used_gb: 60.0,
        });
        let p = g.power_w();
        assert!(p > 400.0 && p <= 600.0, "p = {p}");
    }

    #[test]
    fn power_is_capped_at_max() {
        let mut g = dev();
        g.set_activity(GpuActivity {
            sm_active: 1.0,
            tensor_active: 1.0,
            memory_used_gb: 80.0,
        });
        assert_eq!(g.power_w(), 600.0);
    }

    #[test]
    fn activity_is_clamped() {
        let mut g = dev();
        g.set_activity(GpuActivity {
            sm_active: 2.0,
            tensor_active: 5.0,
            memory_used_gb: 500.0,
        });
        let a = g.activity();
        assert_eq!(a.sm_active, 1.0);
        assert_eq!(a.tensor_active, 1.0);
        assert_eq!(a.memory_used_gb, 80.0);
        assert_eq!(g.memory_fraction(), 1.0);
    }

    #[test]
    fn tensor_cannot_exceed_sm() {
        let mut g = dev();
        g.set_activity(GpuActivity {
            sm_active: 0.3,
            tensor_active: 0.9,
            memory_used_gb: 1.0,
        });
        assert_eq!(g.activity().tensor_active, 0.3);
    }

    #[test]
    fn release_returns_to_idle() {
        let mut g = dev();
        g.set_activity(GpuActivity {
            sm_active: 0.5,
            tensor_active: 0.1,
            memory_used_gb: 10.0,
        });
        g.release();
        assert!(g.is_idle());
        assert_eq!(g.power_w(), 60.0);
    }

    #[test]
    fn power_monotone_in_activity() {
        let mut g = dev();
        let mut last = 0.0;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            g.set_activity(GpuActivity {
                sm_active: u,
                tensor_active: u * 0.5,
                memory_used_gb: 0.0,
            });
            let p = g.power_w();
            assert!(p >= last);
            last = p;
        }
    }
}
