//! GPU thermal model (Figure 21, §5.2 "Failures Caused by High Temperature").
//!
//! Temperature is modelled as ambient plus a thermal resistance times power
//! draw. Memory (HBM) runs hotter than the core — exactly the Figure-21
//! observation — and a cooling-capacity knob reproduces the §5.2 episode:
//! the July 2023 heat wave raised the server-room ambient by ~5 °C, pushing
//! heavily loaded GPUs past 65 °C and triggering NVLink/ECC failures until
//! the cooling system was upgraded.

/// Maps GPU power draw to core/memory temperatures.
#[derive(Debug, Clone, Copy)]
pub struct ThermalModel {
    /// Server-room ambient at the GPU inlet, °C.
    pub ambient_c: f64,
    /// Core thermal resistance, °C/W.
    pub core_resistance: f64,
    /// Memory runs hotter: extra resistance on top of the core path, °C/W.
    pub memory_extra_resistance: f64,
    /// Cooling effectiveness multiplier: 1.0 = design point; > 1.0 after the
    /// cooling upgrade; < 1.0 during the heat wave.
    pub cooling_factor: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            ambient_c: 27.0,
            core_resistance: 0.068,
            memory_extra_resistance: 0.016,
            cooling_factor: 1.0,
        }
    }
}

impl ThermalModel {
    /// The design-point model.
    pub fn normal() -> Self {
        Self::default()
    }

    /// July-2023 heat wave: ambient up ~5 °C and reduced cooling headroom.
    pub fn heat_wave() -> Self {
        ThermalModel {
            ambient_c: 32.0,
            cooling_factor: 0.9,
            ..Self::default()
        }
    }

    /// After the cooling-capability upgrade described in §5.2.
    pub fn upgraded_cooling() -> Self {
        ThermalModel {
            cooling_factor: 1.25,
            ..Self::default()
        }
    }

    /// GPU core temperature for a given power draw, °C.
    pub fn core_temp_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.core_resistance * power_w / self.cooling_factor
    }

    /// GPU memory (HBM) temperature for a given power draw, °C.
    pub fn memory_temp_c(&self, power_w: f64) -> f64 {
        self.ambient_c
            + (self.core_resistance + self.memory_extra_resistance) * power_w / self.cooling_factor
    }

    /// Threshold above which the paper observes thermally induced
    /// NVLink/ECC errors.
    pub const OVERHEAT_THRESHOLD_C: f64 = 65.0;

    /// Whether a GPU at this power is in the overheating regime.
    pub fn is_overheating(&self, power_w: f64) -> bool {
        self.memory_temp_c(power_w) > Self::OVERHEAT_THRESHOLD_C
    }

    /// Multiplier on thermally sensitive hardware failure rates. 1.0 at or
    /// below the threshold, growing linearly ~8%/°C above it.
    pub fn failure_rate_multiplier(&self, power_w: f64) -> f64 {
        let t = self.memory_temp_c(power_w);
        if t <= Self::OVERHEAT_THRESHOLD_C {
            1.0
        } else {
            1.0 + 0.08 * (t - Self::OVERHEAT_THRESHOLD_C)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_hotter_than_core() {
        let m = ThermalModel::normal();
        for p in [60.0, 200.0, 400.0, 600.0] {
            assert!(m.memory_temp_c(p) > m.core_temp_c(p), "p = {p}");
        }
    }

    #[test]
    fn idle_gpu_stays_cool() {
        let m = ThermalModel::normal();
        assert!(m.core_temp_c(60.0) < 35.0);
        assert!(!m.is_overheating(60.0));
    }

    #[test]
    fn heavy_load_crosses_65c() {
        let m = ThermalModel::normal();
        // The paper observes heavily loaded GPUs above 65 °C (Figure 21).
        assert!(m.memory_temp_c(500.0) > 65.0);
        assert!(m.is_overheating(520.0));
    }

    #[test]
    fn heat_wave_raises_ambient_by_5c() {
        let normal = ThermalModel::normal();
        let wave = ThermalModel::heat_wave();
        assert!((wave.ambient_c - normal.ambient_c - 5.0).abs() < 1e-9);
        // Under the heat wave, loads that were safe start overheating.
        let p = 420.0;
        assert!(!normal.is_overheating(p));
        assert!(wave.is_overheating(p));
    }

    #[test]
    fn cooling_upgrade_reduces_temps() {
        let normal = ThermalModel::normal();
        let upgraded = ThermalModel::upgraded_cooling();
        assert!(upgraded.memory_temp_c(600.0) < normal.memory_temp_c(600.0));
    }

    #[test]
    fn failure_multiplier_kicks_in_above_threshold() {
        let m = ThermalModel::heat_wave();
        assert_eq!(m.failure_rate_multiplier(60.0), 1.0);
        let hot = m.failure_rate_multiplier(600.0);
        assert!(hot > 1.5, "multiplier = {hot}");
        // Monotone in power.
        assert!(m.failure_rate_multiplier(500.0) < hot);
    }
}
