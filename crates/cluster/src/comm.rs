//! Collective-communication cost model over the NVLink + InfiniBand fabric.
//!
//! Acme nodes pair 8 NVLink/NVSwitch-connected A100s with one (Seren) or
//! four (Kalos) 200 Gb/s HCAs (§2.2). Collective time follows the standard
//! ring/hierarchical cost model: a collective moving `bytes` per GPU over
//! `n` ranks pays `k(n) · bytes / bw + latency`, where the bandwidth is the
//! slower of the intra-node NVLink share and the per-GPU slice of the
//! node's InfiniBand uplink. The Appendix-A.6 MoE result — all-to-all
//! starving a single-HCA node — falls straight out of this arithmetic.

/// What the ranks are doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Reduce + broadcast (ring: `2(n−1)/n` of the data per link).
    AllReduce,
    /// Everyone ends with everything (`(n−1)/n`).
    AllGather,
    /// Everyone ends with a reduced shard (`(n−1)/n`).
    ReduceScatter,
    /// Personalized exchange: `(n−1)/n` of the data crosses rank
    /// boundaries, most of it inter-node.
    AllToAll,
    /// One-to-all over a tree (`≈ 1×` the data on the bottleneck link).
    Broadcast,
}

/// The communication fabric of one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricSpec {
    /// GPUs per node (NVLink domain size).
    pub gpus_per_node: u32,
    /// Per-GPU NVLink bandwidth, GB/s (A100-SXM: 600 GB/s aggregate).
    pub nvlink_gbps: f64,
    /// Total application InfiniBand bandwidth per node, GB/s.
    pub ib_node_gbps: f64,
    /// Per-collective launch latency inside a node, microseconds.
    pub latency_intra_us: f64,
    /// Per-collective launch latency across nodes, microseconds.
    pub latency_inter_us: f64,
    /// Achieved fraction of line rate for bulk ring traffic.
    pub ring_efficiency: f64,
    /// Achieved fraction of line rate for all-to-all (incast and
    /// many-small-message effects cut it roughly in half).
    pub a2a_efficiency: f64,
}

impl FabricSpec {
    /// Seren: one 200 Gb/s HCA per node.
    pub fn seren() -> Self {
        FabricSpec {
            gpus_per_node: 8,
            nvlink_gbps: 600.0,
            ib_node_gbps: 200.0 / 8.0,
            latency_intra_us: 8.0,
            latency_inter_us: 25.0,
            ring_efficiency: 0.85,
            a2a_efficiency: 0.5,
        }
    }

    /// Kalos: four 200 Gb/s application HCAs per node.
    pub fn kalos() -> Self {
        FabricSpec {
            ib_node_gbps: 800.0 / 8.0,
            ..Self::seren()
        }
    }

    /// Effective per-GPU bandwidth (GB/s) for a collective over `gpus`
    /// ranks: NVLink when the collective fits inside one node, otherwise
    /// the per-GPU share of the node uplink.
    pub fn bottleneck_gbps(&self, gpus: u32, collective: Collective) -> f64 {
        let efficiency = match collective {
            Collective::AllToAll => self.a2a_efficiency,
            _ => self.ring_efficiency,
        };
        if gpus <= self.gpus_per_node {
            self.nvlink_gbps * efficiency
        } else {
            (self.ib_node_gbps / self.gpus_per_node as f64) * efficiency
        }
    }

    /// Wall time in seconds for `collective` moving `bytes_per_gpu` over
    /// `gpus` ranks.
    ///
    /// # Panics
    /// Panics unless `gpus >= 2`.
    pub fn collective_secs(&self, collective: Collective, bytes_per_gpu: f64, gpus: u32) -> f64 {
        let bw = self.bottleneck_gbps(gpus, collective);
        self.collective_secs_at(collective, bytes_per_gpu, gpus, bw)
    }

    /// [`collective_secs`](Self::collective_secs) at an explicit per-GPU
    /// bottleneck bandwidth (GB/s). The topology-aware fabric
    /// (`cluster::net`) derives its bottleneck from link shares and prices
    /// through this, so analytic and routed prices share one arithmetic
    /// path — on a healthy non-blocking tree they are byte-identical.
    ///
    /// # Panics
    /// Panics unless `gpus >= 2`.
    pub fn collective_secs_at(
        &self,
        collective: Collective,
        bytes_per_gpu: f64,
        gpus: u32,
        bottleneck_gbps: f64,
    ) -> f64 {
        assert!(gpus >= 2, "a collective needs at least two ranks");
        let n = gpus as f64;
        let traffic_factor = match collective {
            Collective::AllReduce => 2.0 * (n - 1.0) / n,
            Collective::AllGather | Collective::ReduceScatter | Collective::AllToAll => {
                (n - 1.0) / n
            }
            Collective::Broadcast => 1.0,
        };
        let bw = bottleneck_gbps * 1e9;
        let latency = if gpus <= self.gpus_per_node {
            self.latency_intra_us
        } else {
            // Ring latency grows with the node count on the ring.
            self.latency_inter_us * (n / self.gpus_per_node as f64).ceil()
        } * 1e-6;
        traffic_factor * bytes_per_gpu / bw + latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn intra_node_is_much_faster_than_inter() {
        let f = FabricSpec::seren();
        let intra = f.collective_secs(Collective::AllReduce, 100.0 * MB, 8);
        let inter = f.collective_secs(Collective::AllReduce, 100.0 * MB, 16);
        assert!(
            inter > 20.0 * intra,
            "inter {inter:.4}s vs intra {intra:.5}s"
        );
    }

    #[test]
    fn allreduce_moves_twice_allgather() {
        let f = FabricSpec::seren();
        let ar = f.collective_secs(Collective::AllReduce, 64.0 * MB, 64);
        let ag = f.collective_secs(Collective::AllGather, 64.0 * MB, 64);
        let ratio = ar / ag;
        assert!((1.8..2.1).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn kalos_uplink_is_4x_seren() {
        let s = FabricSpec::seren();
        let k = FabricSpec::kalos();
        let ts = s.collective_secs(Collective::AllToAll, 64.0 * MB, 256);
        let tk = k.collective_secs(Collective::AllToAll, 64.0 * MB, 256);
        let ratio = ts / tk;
        assert!((3.5..4.2).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn a2a_pays_the_efficiency_penalty() {
        let f = FabricSpec::seren();
        let a2a = f.collective_secs(Collective::AllToAll, 64.0 * MB, 64);
        let ag = f.collective_secs(Collective::AllGather, 64.0 * MB, 64);
        // Same traffic factor, worse efficiency.
        assert!(a2a > 1.5 * ag, "a2a {a2a:.4}s vs ag {ag:.4}s");
    }

    #[test]
    fn time_scales_linearly_in_bytes() {
        let f = FabricSpec::kalos();
        let t1 = f.collective_secs(Collective::ReduceScatter, 10.0 * MB, 128);
        let t10 = f.collective_secs(Collective::ReduceScatter, 100.0 * MB, 128);
        let ratio = t10 / t1;
        assert!(
            (6.0..10.2).contains(&ratio),
            "ratio {ratio:.2} (latency floor keeps it sublinear)"
        );
    }

    #[test]
    fn latency_floor_for_tiny_messages() {
        let f = FabricSpec::seren();
        let t = f.collective_secs(Collective::AllReduce, 8.0, 1024);
        assert!(t >= 25e-6 * 128.0, "tiny collectives pay ring latency: {t}");
    }

    #[test]
    fn traffic_factor_approaches_limits() {
        let f = FabricSpec::seren();
        // For two ranks, allreduce moves exactly 1x per link.
        let two = f.collective_secs(Collective::AllReduce, 100.0 * MB, 2);
        let expected = 100.0 * MB / (600.0 * 0.85 * 1e9) + 8e-6;
        assert!((two - expected).abs() / expected < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn rejects_single_rank() {
        FabricSpec::seren().collective_secs(Collective::Broadcast, 1.0, 1);
    }

    /// Anchor test for Appendix A.6: the MoE all-to-all volume of a
    /// Mistral-style model (4096 tokens/GPU, hidden 4096, top-2, two
    /// all-to-alls per layer, 32 layers) exposes roughly half the step on
    /// Seren's single HCA — matching the Figure-22 calibration.
    #[test]
    fn moe_alltoall_exposure_matches_fig22_regime() {
        let bytes_per_layer_per_a2a = 4096.0 * 4096.0 * 2.0 * 2.0; // tokens×hidden×bf16×topk
        let f = FabricSpec::seren();
        let a2a = f.collective_secs(Collective::AllToAll, bytes_per_layer_per_a2a, 1024);
        let comm_per_step = a2a * 2.0 * 32.0;
        // Compute side: 6 × 13B active × 4M tokens over 1024 GPUs at 45% MFU.
        let compute = 6.0 * 13e9 * 4_194_304.0 / (1024.0 * 312e12 * 0.45);
        let frac = comm_per_step / (comm_per_step + compute);
        assert!((0.4..0.65).contains(&frac), "exposed fraction {frac:.2}");
    }
}
