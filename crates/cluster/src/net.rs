//! Topology-aware network substrate: a k-ary fat tree under the fabric.
//!
//! The [`comm`](crate::comm) and [`storage`](crate::storage) models price
//! collectives and checkpoint writes *analytically* — a bandwidth number
//! per node with no notion of paths. That cannot express the failure modes
//! reliability studies put at the top of the large-job downtime bill:
//! switch faults that take out whole *fault domains*, link flaps that ECMP
//! could route around, and oversubscription windows that manifest as
//! stragglers rather than crashes.
//!
//! This module adds the missing substrate:
//!
//! * [`NetConfig`] / [`FatTree`] — a classic k-ary fat-tree (k pods, k/2
//!   edge + k/2 aggregation switches per pod, (k/2)² core switches, k³/4
//!   hosts) with structured validation and deterministic ECMP-style
//!   routing (the path is a pure function of `(src, dst, flow tag)`);
//! * [`max_min_rates`] — flow-level max-min fair bandwidth sharing via
//!   progressive filling, the fairness model flow-level simulators
//!   (htsim-style) use;
//! * [`FlowSim`] — an event-driven flow scheduler on the sim-core
//!   calendar-queue engine: rates are recomputed at every arrival and
//!   completion, so flow finish times are exact under max-min sharing;
//! * [`NetFabric`] — the pricing adapter. On a healthy, non-oversubscribed
//!   tree its per-GPU bottleneck is **byte-identical** to
//!   [`FabricSpec::bottleneck_gbps`] (the differential tests pin this), so
//!   every historical golden output is unchanged; under link/switch faults
//!   and congestion the bottleneck degrades topologically;
//! * [`stats`] — thread-local flow counters (`flows_routed`, peak link
//!   utilization) drained per experiment/shard for `--timings-json`,
//!   mirroring `acme_sim_core::stats`.

use acme_sim_core::{EventQueue, SimTime};

use crate::comm::{Collective, FabricSpec};

pub mod stats;

/// Structured configuration errors, surfaced by `repro` arg parsing as
/// usage errors (the same pattern `StormConfig::validate` follows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetError {
    /// A link-capacity field is zero, negative, NaN or infinite.
    ZeroCapacity {
        /// The offending link tier (`host`, `edge uplink`, `agg uplink`).
        link: &'static str,
        /// The offending value, GB/s.
        gbps: f64,
    },
    /// The fat-tree radix is not an even power of two ≥ 4.
    BadRadix {
        /// The offending radix.
        radix: u32,
    },
    /// The oversubscription ratio lies outside `[1, 64]` (or is not
    /// finite).
    BadOversubscription {
        /// The offending ratio.
        ratio: f64,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::ZeroCapacity { link, gbps } => {
                write!(f, "{link} link capacity must be positive, got {gbps} GB/s")
            }
            NetError::BadRadix { radix } => {
                write!(f, "fat-tree radix must be a power of two >= 4, got {radix}")
            }
            NetError::BadOversubscription { ratio } => {
                write!(f, "oversubscription ratio must lie in [1, 64], got {ratio}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// The fat-tree shape and per-tier link capacities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Switch radix `k`: `k` pods, `k/2` hosts per edge switch, `k³/4`
    /// hosts total.
    pub radix: u32,
    /// Host ↔ edge-switch link capacity, GB/s (the node's IB uplink).
    pub host_gbps: f64,
    /// Edge ↔ aggregation link capacity, GB/s, *before* oversubscription.
    pub edge_up_gbps: f64,
    /// Aggregation ↔ core link capacity, GB/s.
    pub agg_up_gbps: f64,
    /// Edge-uplink oversubscription ratio (≥ 1): the deployed edge uplinks
    /// carry `edge_up_gbps / oversubscription` each, so a fully loaded
    /// edge switch cannot feed every host at line rate — the congestion
    /// windows the netstorm experiment turns into stragglers.
    pub oversubscription: f64,
}

impl NetConfig {
    /// The non-blocking tree for a [`FabricSpec`]: every tier at the
    /// node-uplink line rate, no oversubscription. On this shape the
    /// per-GPU bottleneck equals the analytic `ib_node_gbps /
    /// gpus_per_node` exactly (same floats, same arithmetic).
    pub fn for_fabric(fabric: &FabricSpec, radix: u32) -> Self {
        NetConfig {
            radix,
            host_gbps: fabric.ib_node_gbps,
            edge_up_gbps: fabric.ib_node_gbps,
            agg_up_gbps: fabric.ib_node_gbps,
            oversubscription: 1.0,
        }
    }

    /// Structured validation: zero-capacity links, a non-power-of-two
    /// radix and out-of-range oversubscription ratios are reported instead
    /// of silently misbehaving. [`FatTree::new`] panics with the same
    /// messages; the `repro netstorm` arg path surfaces them as usage
    /// errors.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.radix < 4 || !self.radix.is_power_of_two() {
            return Err(NetError::BadRadix { radix: self.radix });
        }
        for (link, gbps) in [
            ("host", self.host_gbps),
            ("edge uplink", self.edge_up_gbps),
            ("agg uplink", self.agg_up_gbps),
        ] {
            if !gbps.is_finite() || gbps <= 0.0 {
                return Err(NetError::ZeroCapacity { link, gbps });
            }
        }
        if !self.oversubscription.is_finite() || !(1.0..=64.0).contains(&self.oversubscription) {
            return Err(NetError::BadOversubscription {
                ratio: self.oversubscription,
            });
        }
        Ok(())
    }
}

/// Directed link id inside a [`FatTree`]. Links are directed — the two
/// directions of one cable are separate ids — because collective and
/// checkpoint traffic is directional.
pub type LinkId = u32;

/// A k-ary fat-tree topology with deterministic ECMP-style routing.
///
/// Host `h` lives in pod `h / (k/2)²` under edge switch `(h mod (k/2)²) /
/// (k/2)`. Each pod has `k/2` edge and `k/2` aggregation switches; core
/// switches form `k/2` groups of `k/2`, group `a` wired to aggregation
/// switch `a` of every pod.
#[derive(Debug, Clone)]
pub struct FatTree {
    config: NetConfig,
    half: u32,
    hosts: u32,
    edges: u32,
}

impl FatTree {
    /// Build a tree. Panics on an invalid config with the same message
    /// [`NetConfig::validate`] returns; callers wanting a structured error
    /// validate first.
    pub fn new(config: NetConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("{e}");
        }
        let k = config.radix;
        FatTree {
            config,
            half: k / 2,
            hosts: k * k * k / 4,
            edges: k * k / 2,
        }
    }

    /// The configuration the tree was built from.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Hosts in the tree: `k³/4`.
    pub fn hosts(&self) -> u32 {
        self.hosts
    }

    /// Pods: `k`.
    pub fn pods(&self) -> u32 {
        self.config.radix
    }

    /// Edge (ToR) switches: `k²/2`.
    pub fn edge_switches(&self) -> u32 {
        self.edges
    }

    /// Aggregation switches: `k²/2`.
    pub fn agg_switches(&self) -> u32 {
        self.edges
    }

    /// Core switches: `(k/2)²`.
    pub fn core_switches(&self) -> u32 {
        self.half * self.half
    }

    /// Hosts per pod: `(k/2)²`.
    pub fn hosts_per_pod(&self) -> u32 {
        self.half * self.half
    }

    /// Hosts per edge switch: `k/2`.
    pub fn hosts_per_edge(&self) -> u32 {
        self.half
    }

    /// The pod a host lives in.
    pub fn pod_of_host(&self, host: u32) -> u32 {
        host / self.hosts_per_pod()
    }

    /// The global edge-switch index a host hangs off.
    pub fn edge_of_host(&self, host: u32) -> u32 {
        host / self.half
    }

    /// The hosts under one edge switch — the tree's smallest fault domain.
    pub fn hosts_under_edge(&self, edge: u32) -> std::ops::Range<u32> {
        edge * self.half..(edge + 1) * self.half
    }

    /// The hosts inside one pod — the aggregation-layer fault domain.
    pub fn hosts_under_pod(&self, pod: u32) -> std::ops::Range<u32> {
        pod * self.hosts_per_pod()..(pod + 1) * self.hosts_per_pod()
    }

    /// If every node in `nodes` hangs off one edge switch — and the set
    /// covers that switch completely — the fault domain is the switch, not
    /// the nodes. This is the topology-aware reading of a two-round
    /// localization result.
    pub fn common_edge_domain(&self, nodes: &[u32]) -> Option<u32> {
        let first = *nodes.first()?;
        let edge = self.edge_of_host(first);
        let domain = self.hosts_under_edge(edge);
        let all_inside = nodes.iter().all(|&n| self.edge_of_host(n) == edge);
        let covers = domain.clone().all(|h| nodes.contains(&h));
        (all_inside && covers && nodes.len() == domain.len()).then_some(edge)
    }

    // ---- directed link layout -----------------------------------------
    //
    // Block layout, in order: host→edge, edge→host, edge→agg, agg→edge,
    // agg→core, core→agg. Each block is indexed by its natural tuple.

    /// Total directed links.
    pub fn link_count(&self) -> u32 {
        2 * self.hosts + 4 * self.edges * self.half
    }

    /// Host `h` → its edge switch.
    pub fn host_up(&self, host: u32) -> LinkId {
        host
    }

    /// Edge switch → host `h`.
    pub fn host_down(&self, host: u32) -> LinkId {
        self.hosts + host
    }

    /// Edge switch `e` (global index) → aggregation switch `a` (index
    /// within the pod).
    pub fn edge_up(&self, edge: u32, agg: u32) -> LinkId {
        2 * self.hosts + edge * self.half + agg
    }

    /// Aggregation switch `a` of `pod` → edge switch `e` (index within the
    /// pod).
    pub fn agg_down(&self, pod: u32, agg: u32, edge_in_pod: u32) -> LinkId {
        2 * self.hosts + self.edges * self.half + (pod * self.half + agg) * self.half + edge_in_pod
    }

    /// Aggregation switch `a` of `pod` → core switch `c` of group `a`.
    pub fn agg_up(&self, pod: u32, agg: u32, core: u32) -> LinkId {
        2 * self.hosts + 2 * self.edges * self.half + (pod * self.half + agg) * self.half + core
    }

    /// Core switch `c` of group `a` → aggregation switch `a` of `pod`.
    pub fn core_down(&self, agg: u32, core: u32, pod: u32) -> LinkId {
        2 * self.hosts
            + 3 * self.edges * self.half
            + (agg * self.half + core) * self.config.radix
            + pod
    }

    /// Line-rate capacity of a directed link, GB/s, from the config (edge
    /// uplinks pay the oversubscription ratio in both directions).
    pub fn line_rate(&self, link: LinkId) -> f64 {
        let c = &self.config;
        if link < 2 * self.hosts {
            c.host_gbps
        } else if link < 2 * self.hosts + 2 * self.edges * self.half {
            c.edge_up_gbps / c.oversubscription
        } else {
            c.agg_up_gbps
        }
    }

    /// Deterministic ECMP hash: which of the `k/2` aggregation (and core)
    /// choices a flow takes. A pure function of `(src, dst, tag)` —
    /// rerunning the same flow always picks the same path, which is what
    /// keeps flow schedules byte-reproducible.
    fn ecmp(&self, src: u32, dst: u32, tag: u64) -> u64 {
        // splitmix64-style avalanche over the flow key.
        let mut z = (u64::from(src) << 40) ^ (u64::from(dst) << 16) ^ tag;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The directed links a flow from `src` to `dst` traverses, in hop
    /// order. ECMP choices are deterministic in `(src, dst, tag)`.
    ///
    /// # Panics
    /// Panics if either endpoint is outside the tree.
    pub fn route(&self, src: u32, dst: u32, tag: u64) -> Vec<LinkId> {
        assert!(src < self.hosts && dst < self.hosts, "host outside tree");
        if src == dst {
            return Vec::new();
        }
        let mut path = vec![self.host_up(src)];
        let (src_edge, dst_edge) = (self.edge_of_host(src), self.edge_of_host(dst));
        if src_edge != dst_edge {
            let (src_pod, dst_pod) = (self.pod_of_host(src), self.pod_of_host(dst));
            let h = self.ecmp(src, dst, tag);
            let agg = (h % u64::from(self.half)) as u32;
            let dst_edge_in_pod = dst_edge % self.half;
            path.push(self.edge_up(src_edge, agg));
            if src_pod == dst_pod {
                path.push(self.agg_down(src_pod, agg, dst_edge_in_pod));
            } else {
                let core = ((h / u64::from(self.half)) % u64::from(self.half)) as u32;
                path.push(self.agg_up(src_pod, agg, core));
                path.push(self.core_down(agg, core, dst_pod));
                path.push(self.agg_down(dst_pod, agg, dst_edge_in_pod));
            }
        }
        path.push(self.host_down(dst));
        path
    }
}

/// Max-min fair rates for `paths` over per-link `capacity` (GB/s), via
/// progressive filling: repeatedly saturate the tightest link, freeze its
/// flows at the fair share, subtract, repeat. Deterministic: ties break
/// toward the lowest link id. Flows crossing a dead (≤ 0 capacity) link
/// get rate 0.
pub fn max_min_rates(paths: &[Vec<LinkId>], capacity: &[f64]) -> Vec<f64> {
    let n = paths.len();
    let mut rate = vec![0.0f64; n];
    let mut fixed = vec![false; n];
    let mut remaining = capacity.to_vec();
    let mut users: Vec<u32> = vec![0; capacity.len()];
    for p in paths {
        for &l in p {
            users[l as usize] += 1;
        }
    }
    // Flows over dead links are stalled at rate 0 and release their other
    // links immediately.
    for (i, p) in paths.iter().enumerate() {
        if p.iter().any(|&l| capacity[l as usize] <= 0.0) {
            fixed[i] = true;
            for &l in p {
                users[l as usize] -= 1;
            }
        }
    }
    loop {
        // The bottleneck: the live link with the smallest fair share.
        let mut bottleneck: Option<(usize, f64)> = None;
        for (l, &r) in remaining.iter().enumerate() {
            if users[l] == 0 || capacity[l] <= 0.0 {
                continue;
            }
            let share = r / f64::from(users[l]);
            match bottleneck {
                Some((_, best)) if share >= best => {}
                _ => bottleneck = Some((l, share)),
            }
        }
        let Some((link, share)) = bottleneck else {
            break;
        };
        // Freeze every unfixed flow through the bottleneck at the share.
        for i in 0..n {
            if fixed[i] || !paths[i].contains(&(link as LinkId)) {
                continue;
            }
            rate[i] = share;
            fixed[i] = true;
            for &l in &paths[i] {
                remaining[l as usize] -= share;
                users[l as usize] -= 1;
            }
        }
    }
    rate
}

/// One flow offered to the [`FlowSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source host.
    pub src: u32,
    /// Destination host.
    pub dst: u32,
    /// Bytes to move, GB.
    pub gb: f64,
    /// When the flow starts.
    pub start: SimTime,
    /// ECMP tag (e.g. a per-flow sequence number): distinct tags spread
    /// same-pair flows over distinct paths deterministically.
    pub tag: u64,
}

/// What one flow achieved in a [`FlowSim`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOutcome {
    /// When the flow finished; `None` if it was stalled on a dead link
    /// when the last live flow completed.
    pub finish: Option<SimTime>,
}

/// Event-driven flow-level simulation over a [`NetFabric`]: max-min rates
/// are recomputed at every arrival and completion, scheduled through the
/// sim-core calendar queue, so finish times are exact under fair sharing
/// and byte-reproducible across runs.
#[derive(Debug)]
pub struct FlowSim<'a> {
    fabric: &'a NetFabric,
}

/// Calendar-queue events the flow scheduler processes.
#[derive(Debug, Clone, Copy)]
enum FlowEvent {
    Arrive(usize),
    /// Tentative completion, valid only while `version` matches the
    /// scheduler's current rate epoch (stale completions are skipped).
    Complete(usize, u64),
}

impl<'a> FlowSim<'a> {
    /// A scheduler over the fabric's current link health.
    pub fn new(fabric: &'a NetFabric) -> Self {
        FlowSim { fabric }
    }

    /// Run every flow to completion (or stall) and return per-flow
    /// outcomes in input order. Deposits `flows_routed` and peak
    /// time-averaged link utilization into [`stats`].
    pub fn run(&self, flows: &[Flow]) -> Vec<FlowOutcome> {
        let tree = self.fabric.tree();
        let paths: Vec<Vec<LinkId>> = flows
            .iter()
            .map(|f| tree.route(f.src, f.dst, f.tag))
            .collect();
        let capacity = self.fabric.capacities();
        let mut remaining: Vec<f64> = flows.iter().map(|f| f.gb).collect();
        let mut finish: Vec<Option<SimTime>> = vec![None; flows.len()];
        let mut active: Vec<bool> = vec![false; flows.len()];
        let mut carried: Vec<f64> = vec![0.0; capacity.len()];

        let mut q: EventQueue<FlowEvent> = EventQueue::new();
        for (i, f) in flows.iter().enumerate() {
            q.schedule(f.start, FlowEvent::Arrive(i));
        }

        let mut epoch = 0u64;
        let mut rates: Vec<f64> = vec![0.0; flows.len()];
        let mut last = SimTime::ZERO;
        while let Some((at, ev)) = q.pop() {
            // Advance every active flow by the span since the last event.
            let span = at.saturating_since(last).as_secs_f64();
            if span > 0.0 {
                for i in 0..flows.len() {
                    if active[i] {
                        remaining[i] -= rates[i] * span;
                        for &l in &paths[i] {
                            carried[l as usize] += rates[i] * span;
                        }
                    }
                }
            }
            last = at;
            match ev {
                FlowEvent::Arrive(i) => active[i] = true,
                FlowEvent::Complete(i, v) => {
                    if v != epoch {
                        continue; // stale: rates changed since scheduling
                    }
                    active[i] = false;
                    remaining[i] = 0.0;
                    finish[i] = Some(at);
                }
            }
            // Rates changed: recompute the max-min allocation and schedule
            // fresh tentative completions under the new epoch.
            epoch += 1;
            let live: Vec<Vec<LinkId>> = (0..flows.len())
                .map(|i| {
                    if active[i] {
                        paths[i].clone()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            rates = max_min_rates(&live, &capacity);
            for i in 0..flows.len() {
                if active[i] && rates[i] > 0.0 {
                    let dt = (remaining[i] / rates[i]).max(0.0);
                    q.schedule(
                        at + acme_sim_core::SimDuration::from_secs_f64(dt),
                        FlowEvent::Complete(i, epoch),
                    );
                }
            }
        }

        // Peak time-averaged utilization of the busiest link.
        let makespan = last.as_secs_f64();
        let mut peak = 0.0f64;
        if makespan > 0.0 {
            for (l, &gb) in carried.iter().enumerate() {
                if capacity[l] > 0.0 {
                    peak = peak.max(gb / (capacity[l] * makespan));
                }
            }
        }
        stats::record(flows.len() as u64, peak);
        finish
            .into_iter()
            .map(|f| FlowOutcome { finish: f })
            .collect()
    }
}

/// The live fabric: a [`FatTree`] plus per-link health, and the pricing
/// adapter that makes network state visible to the analytic models.
///
/// On a healthy [`NetConfig::for_fabric`] tree the derived per-GPU
/// bottleneck is the *same float* as [`FabricSpec::bottleneck_gbps`], so
/// collective prices routed through the tree are byte-identical to the
/// analytic ones — the differential tests pin that. Faults and congestion
/// then lower the bottleneck topologically.
#[derive(Debug, Clone)]
pub struct NetFabric {
    fabric: FabricSpec,
    tree: FatTree,
    capacity: Vec<f64>,
}

impl NetFabric {
    /// A healthy fabric over a tree shape.
    pub fn new(fabric: FabricSpec, config: NetConfig) -> Self {
        let tree = FatTree::new(config);
        let capacity = (0..tree.link_count()).map(|l| tree.line_rate(l)).collect();
        NetFabric {
            fabric,
            tree,
            capacity,
        }
    }

    /// The analytic fabric underneath.
    pub fn fabric(&self) -> &FabricSpec {
        &self.fabric
    }

    /// The topology.
    pub fn tree(&self) -> &FatTree {
        &self.tree
    }

    /// Current per-link capacities, GB/s (0 for failed links).
    pub fn capacities(&self) -> Vec<f64> {
        self.capacity.clone()
    }

    /// Restore every link to its configured line rate.
    pub fn heal(&mut self) {
        for l in 0..self.tree.link_count() {
            self.capacity[l as usize] = self.tree.line_rate(l);
        }
    }

    /// Fail one edge→agg uplink (both directions) — a link flap while it
    /// lasts. ECMP still has `k/2 − 1` sibling uplinks.
    pub fn fail_edge_uplink(&mut self, edge: u32, agg: u32) {
        let pod = edge / self.tree.half;
        let edge_in_pod = edge % self.tree.half;
        self.capacity[self.tree.edge_up(edge, agg) as usize] = 0.0;
        self.capacity[self.tree.agg_down(pod, agg, edge_in_pod) as usize] = 0.0;
    }

    /// Fail an edge (ToR) switch: every host under it is stranded — the
    /// canonical whole-fault-domain failure.
    pub fn fail_edge_switch(&mut self, edge: u32) {
        for h in self.tree.hosts_under_edge(edge) {
            self.capacity[self.tree.host_up(h) as usize] = 0.0;
            self.capacity[self.tree.host_down(h) as usize] = 0.0;
        }
        let pod = edge / self.tree.half;
        let edge_in_pod = edge % self.tree.half;
        for a in 0..self.tree.half {
            self.capacity[self.tree.edge_up(edge, a) as usize] = 0.0;
            self.capacity[self.tree.agg_down(pod, a, edge_in_pod) as usize] = 0.0;
        }
    }

    /// Fail an aggregation switch: the pod keeps `k/2 − 1` of its uplink
    /// capacity; ECMP reroutes around it.
    pub fn fail_agg_switch(&mut self, pod: u32, agg: u32) {
        for e in 0..self.tree.half {
            let edge = pod * self.tree.half + e;
            self.capacity[self.tree.edge_up(edge, agg) as usize] = 0.0;
            self.capacity[self.tree.agg_down(pod, agg, e) as usize] = 0.0;
        }
        for c in 0..self.tree.half {
            self.capacity[self.tree.agg_up(pod, agg, c) as usize] = 0.0;
            self.capacity[self.tree.core_down(agg, c, pod) as usize] = 0.0;
        }
    }

    /// An oversubscription window: the pod's edge↔agg tier runs at
    /// `1/factor` of line rate (external tenant traffic, incast, a sick
    /// firmware queue) — collectives crossing the pod straggle instead of
    /// crashing.
    ///
    /// # Panics
    /// Panics if `factor < 1`.
    pub fn congest_pod(&mut self, pod: u32, factor: f64) {
        assert!(factor >= 1.0, "congestion factor must be >= 1");
        for e in 0..self.tree.half {
            let edge = pod * self.tree.half + e;
            for a in 0..self.tree.half {
                self.capacity[self.tree.edge_up(edge, a) as usize] =
                    self.tree.line_rate(self.tree.edge_up(edge, a)) / factor;
                self.capacity[self.tree.agg_down(pod, a, e) as usize] =
                    self.tree.line_rate(self.tree.agg_down(pod, a, e)) / factor;
            }
        }
    }

    /// Per-GPU bottleneck bandwidth (GB/s) for a collective over `gpus`
    /// ranks placed on `hosts`, derived from link shares instead of the
    /// analytic constant.
    ///
    /// Inside one node the NVLink term is untouched. Across nodes the
    /// ring's per-host bandwidth is the minimum over participating hosts
    /// of three fair shares: the host uplink split across its GPUs, the
    /// host's edge-switch uplink tier split across participating hosts
    /// under that edge, and the pod's aggregation tier split across
    /// participating hosts in the pod (the latter two only when the ring
    /// actually crosses that tier). On a healthy non-oversubscribed tree
    /// every upper tier is at least the host line rate, so the minimum is
    /// exactly `host_gbps / gpus_per_node` — the analytic price.
    pub fn bottleneck_gbps(&self, hosts: &[u32], gpus: u32, collective: Collective) -> f64 {
        let efficiency = match collective {
            Collective::AllToAll => self.fabric.a2a_efficiency,
            _ => self.fabric.ring_efficiency,
        };
        if gpus <= self.fabric.gpus_per_node || hosts.len() < 2 {
            return self.fabric.bottleneck_gbps(gpus, collective);
        }
        let tree = &self.tree;
        let per_node = f64::from(self.fabric.gpus_per_node);
        // Participation counts per edge switch and per pod.
        let mut under_edge = std::collections::BTreeMap::<u32, u32>::new();
        let mut under_pod = std::collections::BTreeMap::<u32, u32>::new();
        for &h in hosts {
            *under_edge.entry(tree.edge_of_host(h)).or_insert(0) += 1;
            *under_pod.entry(tree.pod_of_host(h)).or_insert(0) += 1;
        }
        let crosses_edges = under_edge.len() > 1;
        let crosses_pods = under_pod.len() > 1;
        let mut per_host = f64::INFINITY;
        for &h in hosts {
            let mut bw = self.capacity[tree.host_up(h) as usize];
            if crosses_edges {
                let edge = tree.edge_of_host(h);
                let pod = tree.pod_of_host(h);
                let up: f64 = (0..tree.half)
                    .map(|a| self.capacity[tree.edge_up(edge, a) as usize])
                    .sum();
                bw = bw.min(up / f64::from(under_edge[&edge]));
                if crosses_pods {
                    let agg_up: f64 = (0..tree.half)
                        .flat_map(|a| (0..tree.half).map(move |c| (a, c)))
                        .map(|(a, c)| self.capacity[tree.agg_up(pod, a, c) as usize])
                        .sum();
                    bw = bw.min(agg_up / f64::from(under_pod[&pod]));
                }
            }
            per_host = per_host.min(bw);
        }
        (per_host / per_node) * efficiency
    }

    /// Wall seconds for a collective over `gpus` ranks on `hosts`, priced
    /// through the tree. Identical arithmetic to
    /// [`FabricSpec::collective_secs`], with the topology-derived
    /// bottleneck — byte-identical on a healthy non-blocking tree.
    pub fn collective_secs(
        &self,
        collective: Collective,
        bytes_per_gpu: f64,
        gpus: u32,
        hosts: &[u32],
    ) -> f64 {
        let bw = self.bottleneck_gbps(hosts, gpus, collective);
        self.fabric
            .collective_secs_at(collective, bytes_per_gpu, gpus, bw)
    }

    /// Throughput factor (≤ 1) of a training step whose communication is
    /// an all-reduce of `bytes_per_gpu` over `gpus` ranks on `hosts`,
    /// relative to the healthy fabric: `step_healthy / step_now` with
    /// `compute_secs` of overlapped-free compute per step. 1.0 when the
    /// fabric is healthy.
    pub fn step_throughput_factor(
        &self,
        compute_secs: f64,
        bytes_per_gpu: f64,
        gpus: u32,
        hosts: &[u32],
    ) -> f64 {
        let healthy = NetFabric::new(self.fabric, self.tree.config);
        let h = compute_secs
            + healthy.collective_secs(Collective::AllReduce, bytes_per_gpu, gpus, hosts);
        let now =
            compute_secs + self.collective_secs(Collective::AllReduce, bytes_per_gpu, gpus, hosts);
        (h / now).min(1.0)
    }

    /// Effective per-writer bandwidth (GB/s) for checkpoint shards pushed
    /// from `writers` hosts up through the tree to the storage fabric
    /// behind the core layer: the minimum over writers of their host
    /// uplink share, edge-tier share and pod aggregation-tier share. The
    /// caller clamps the analytic `remote_gbps_per_writer` with this — on
    /// a healthy tree the network term is far above the storage term, so
    /// the min leaves analytic checkpoint prices byte-identical.
    pub fn checkpoint_write_gbps(&self, writers: &[u32]) -> f64 {
        let tree = &self.tree;
        let mut on_host = std::collections::BTreeMap::<u32, u32>::new();
        let mut under_edge = std::collections::BTreeMap::<u32, u32>::new();
        let mut under_pod = std::collections::BTreeMap::<u32, u32>::new();
        for &w in writers {
            *on_host.entry(w).or_insert(0) += 1;
            *under_edge.entry(tree.edge_of_host(w)).or_insert(0) += 1;
            *under_pod.entry(tree.pod_of_host(w)).or_insert(0) += 1;
        }
        let mut per_writer = f64::INFINITY;
        for &w in writers {
            let edge = tree.edge_of_host(w);
            let pod = tree.pod_of_host(w);
            let up: f64 = (0..tree.half)
                .map(|a| self.capacity[tree.edge_up(edge, a) as usize])
                .sum();
            let agg_up: f64 = (0..tree.half)
                .flat_map(|a| (0..tree.half).map(move |c| (a, c)))
                .map(|(a, c)| self.capacity[tree.agg_up(pod, a, c) as usize])
                .sum();
            let bw = (self.capacity[tree.host_up(w) as usize] / f64::from(on_host[&w]))
                .min(up / f64::from(under_edge[&edge]))
                .min(agg_up / f64::from(under_pod[&pod]));
            per_writer = per_writer.min(bw);
        }
        per_writer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn tree8() -> FatTree {
        FatTree::new(NetConfig::for_fabric(&FabricSpec::kalos(), 8))
    }

    #[test]
    fn validate_reports_structured_errors() {
        NetConfig::for_fabric(&FabricSpec::seren(), 8)
            .validate()
            .unwrap();
        let mut c = NetConfig::for_fabric(&FabricSpec::seren(), 8);
        c.radix = 6;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "fat-tree radix must be a power of two >= 4, got 6"
        );
        c.radix = 0;
        assert!(matches!(c.validate(), Err(NetError::BadRadix { radix: 0 })));

        let mut c = NetConfig::for_fabric(&FabricSpec::seren(), 8);
        c.host_gbps = 0.0;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "host link capacity must be positive, got 0 GB/s"
        );
        c.host_gbps = f64::NAN;
        assert!(matches!(c.validate(), Err(NetError::ZeroCapacity { .. })));

        let mut c = NetConfig::for_fabric(&FabricSpec::seren(), 8);
        c.edge_up_gbps = -1.0;
        assert!(matches!(
            c.validate(),
            Err(NetError::ZeroCapacity {
                link: "edge uplink",
                ..
            })
        ));
        let mut c = NetConfig::for_fabric(&FabricSpec::seren(), 8);
        c.agg_up_gbps = f64::INFINITY;
        assert!(matches!(
            c.validate(),
            Err(NetError::ZeroCapacity {
                link: "agg uplink",
                ..
            })
        ));

        let mut c = NetConfig::for_fabric(&FabricSpec::seren(), 8);
        c.oversubscription = 0.5;
        assert_eq!(
            c.validate().unwrap_err().to_string(),
            "oversubscription ratio must lie in [1, 64], got 0.5"
        );
        c.oversubscription = 100.0;
        assert!(c.validate().is_err());
        c.oversubscription = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(NetError::BadOversubscription { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tree_rejects_bad_radix() {
        let mut c = NetConfig::for_fabric(&FabricSpec::seren(), 8);
        c.radix = 12;
        FatTree::new(c);
    }

    #[test]
    fn k8_tree_has_canonical_counts() {
        let t = tree8();
        assert_eq!(t.hosts(), 128);
        assert_eq!(t.pods(), 8);
        assert_eq!(t.edge_switches(), 32);
        assert_eq!(t.agg_switches(), 32);
        assert_eq!(t.core_switches(), 16);
        assert_eq!(t.hosts_per_pod(), 16);
        assert_eq!(t.hosts_per_edge(), 4);
        assert_eq!(t.pod_of_host(17), 1);
        assert_eq!(t.edge_of_host(17), 4);
        assert_eq!(t.hosts_under_edge(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(t.hosts_under_pod(1), 16..32);
    }

    #[test]
    fn link_ids_are_unique_and_in_range() {
        let t = tree8();
        let mut seen = BTreeSet::new();
        for h in 0..t.hosts() {
            seen.insert(t.host_up(h));
            seen.insert(t.host_down(h));
        }
        for e in 0..t.edge_switches() {
            for a in 0..t.hosts_per_edge() {
                seen.insert(t.edge_up(e, a));
            }
        }
        for p in 0..t.pods() {
            for a in 0..t.hosts_per_edge() {
                for x in 0..t.hosts_per_edge() {
                    seen.insert(t.agg_down(p, a, x));
                    seen.insert(t.agg_up(p, a, x));
                }
            }
        }
        for a in 0..t.hosts_per_edge() {
            for c in 0..t.hosts_per_edge() {
                for p in 0..t.pods() {
                    seen.insert(t.core_down(a, c, p));
                }
            }
        }
        assert_eq!(seen.len() as u32, t.link_count());
        assert_eq!(*seen.iter().max().unwrap(), t.link_count() - 1);
    }

    #[test]
    fn routes_have_the_canonical_hop_counts() {
        let t = tree8();
        assert!(t.route(5, 5, 0).is_empty());
        // Same edge switch: up, down.
        assert_eq!(t.route(0, 1, 0).len(), 2);
        // Same pod, different edge: up, edge-up, agg-down, down.
        assert_eq!(t.route(0, 15, 0).len(), 4);
        // Cross-pod: six hops through a core switch.
        assert_eq!(t.route(0, 127, 0).len(), 6);
    }

    #[test]
    fn ecmp_is_deterministic_and_spreads() {
        let t = tree8();
        assert_eq!(t.route(0, 127, 9), t.route(0, 127, 9));
        let distinct: BTreeSet<Vec<LinkId>> = (0..32).map(|tag| t.route(0, 127, tag)).collect();
        assert!(distinct.len() > 1, "ECMP never spread across paths");
    }

    #[test]
    fn common_edge_domain_recognizes_the_switch() {
        let t = tree8();
        assert_eq!(t.common_edge_domain(&[4, 5, 6, 7]), Some(1));
        assert_eq!(t.common_edge_domain(&[4, 5, 6]), None, "incomplete domain");
        assert_eq!(t.common_edge_domain(&[4, 5, 6, 8]), None, "spans edges");
        assert_eq!(t.common_edge_domain(&[]), None);
    }

    #[test]
    fn max_min_conserves_and_saturates() {
        // Two flows share link 0 (cap 10); one continues over link 1
        // (cap 4): the constrained flow gets 4, the other the leftovers.
        let paths = vec![vec![0, 1], vec![0]];
        let rates = max_min_rates(&paths, &[10.0, 4.0]);
        assert!((rates[0] - 4.0).abs() < 1e-12);
        assert!((rates[1] - 6.0).abs() < 1e-12);
        // Dead link: the flow stalls, the other takes the whole pipe.
        let rates = max_min_rates(&paths, &[10.0, 0.0]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn flow_sim_matches_hand_computed_schedule() {
        let fabric = NetFabric::new(
            FabricSpec::kalos(),
            NetConfig::for_fabric(&FabricSpec::kalos(), 4),
        );
        // Two equal flows from distinct hosts to distinct hosts under the
        // same remote edge: each rides its own host uplink (100 GB/s),
        // 50 GB each → 0.5 s.
        let flows = vec![
            Flow {
                src: 0,
                dst: 2,
                gb: 50.0,
                start: SimTime::ZERO,
                tag: 0,
            },
            Flow {
                src: 1,
                dst: 3,
                gb: 50.0,
                start: SimTime::ZERO,
                tag: 1,
            },
        ];
        let out = FlowSim::new(&fabric).run(&flows);
        for o in &out {
            let f = o.finish.unwrap().as_secs_f64();
            assert!((f - 0.5).abs() < 1e-6, "finish {f}");
        }
        // Two flows into ONE destination host share its downlink: 1.0 s.
        let flows = vec![
            Flow {
                src: 0,
                dst: 2,
                gb: 50.0,
                start: SimTime::ZERO,
                tag: 0,
            },
            Flow {
                src: 1,
                dst: 2,
                gb: 50.0,
                start: SimTime::ZERO,
                tag: 1,
            },
        ];
        let out = FlowSim::new(&fabric).run(&flows);
        for o in &out {
            let f = o.finish.unwrap().as_secs_f64();
            assert!((f - 1.0).abs() < 1e-6, "finish {f}");
        }
    }

    #[test]
    fn flow_sim_stalls_flows_over_dead_links() {
        let mut fabric = NetFabric::new(
            FabricSpec::kalos(),
            NetConfig::for_fabric(&FabricSpec::kalos(), 4),
        );
        fabric.fail_edge_switch(0);
        let flows = vec![
            Flow {
                src: 0,
                dst: 4,
                gb: 1.0,
                start: SimTime::ZERO,
                tag: 0,
            },
            Flow {
                src: 2,
                dst: 4,
                gb: 1.0,
                start: SimTime::ZERO,
                tag: 0,
            },
        ];
        let out = FlowSim::new(&fabric).run(&flows);
        assert_eq!(out[0].finish, None, "stranded behind a dead ToR");
        assert!(out[1].finish.is_some());
    }

    #[test]
    fn healthy_bottleneck_is_bit_identical_to_analytic() {
        for fabric in [FabricSpec::seren(), FabricSpec::kalos()] {
            let net = NetFabric::new(fabric, NetConfig::for_fabric(&fabric, 8));
            let hosts: Vec<u32> = (0..16).collect();
            for c in [
                Collective::AllReduce,
                Collective::AllGather,
                Collective::AllToAll,
                Collective::Broadcast,
            ] {
                let gpus = 16 * 8;
                assert_eq!(
                    net.bottleneck_gbps(&hosts, gpus, c).to_bits(),
                    fabric.bottleneck_gbps(gpus, c).to_bits(),
                );
                assert_eq!(
                    net.collective_secs(c, 64e6, gpus, &hosts).to_bits(),
                    fabric.collective_secs(c, 64e6, gpus).to_bits(),
                );
                // Intra-node collectives are the NVLink term either way.
                assert_eq!(
                    net.collective_secs(c, 64e6, 8, &hosts[..1]).to_bits(),
                    fabric.collective_secs(c, 64e6, 8).to_bits(),
                );
            }
        }
    }

    #[test]
    fn oversubscription_and_congestion_lower_the_bottleneck() {
        let fabric = FabricSpec::kalos();
        let mut cfg = NetConfig::for_fabric(&fabric, 8);
        cfg.oversubscription = 4.0;
        let net = NetFabric::new(fabric, cfg);
        let hosts: Vec<u32> = (0..16).collect();
        let over = net.bottleneck_gbps(&hosts, 128, Collective::AllReduce);
        let clean = fabric.bottleneck_gbps(128, Collective::AllReduce);
        assert!(over < clean, "oversubscribed {over} vs clean {clean}");

        let mut net = NetFabric::new(fabric, NetConfig::for_fabric(&fabric, 8));
        net.congest_pod(0, 4.0);
        let congested = net.bottleneck_gbps(&hosts, 128, Collective::AllReduce);
        assert!(congested < clean);
        net.heal();
        assert_eq!(
            net.bottleneck_gbps(&hosts, 128, Collective::AllReduce)
                .to_bits(),
            clean.to_bits()
        );
    }

    #[test]
    fn agg_failure_degrades_but_does_not_strand() {
        let fabric = FabricSpec::kalos();
        let mut net = NetFabric::new(fabric, NetConfig::for_fabric(&fabric, 8));
        let hosts: Vec<u32> = (0..32).collect(); // pods 0 and 1
        let clean = net.step_throughput_factor(0.35, 0.25e9, 256, &hosts);
        assert_eq!(clean, 1.0);
        net.fail_agg_switch(0, 0);
        let degraded = net.step_throughput_factor(0.35, 0.25e9, 256, &hosts);
        assert!(degraded < 1.0, "factor {degraded}");
        assert!(degraded > 0.3, "factor {degraded} — reroute, not an outage");
    }

    #[test]
    fn checkpoint_write_share_is_generous_when_healthy() {
        let fabric = FabricSpec::kalos();
        let net = NetFabric::new(fabric, NetConfig::for_fabric(&fabric, 8));
        let writers: Vec<u32> = (0..32).collect();
        let share = net.checkpoint_write_gbps(&writers);
        // One writer per host: the host uplink is the cap.
        assert_eq!(share.to_bits(), fabric.ib_node_gbps.to_bits());
        // Clamping the analytic per-writer storage bandwidth is a no-op.
        assert_eq!(0.33f64.min(share).to_bits(), 0.33f64.to_bits());
        // Congesting the writers' pods pushes the network below storage.
        let mut sick = net.clone();
        for pod in 0..2 {
            sick.congest_pod(pod, 64.0);
        }
        assert!(sick.checkpoint_write_gbps(&writers) < fabric.ib_node_gbps / 32.0);
    }
}
