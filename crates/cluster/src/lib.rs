//! The Acme datacenter hardware model.
//!
//! This crate is the simulated stand-in for the physical plant described in
//! §2.2 / Table 1 of the paper: two homogeneous A100 clusters (*Seren*,
//! *Kalos*), their nodes, GPUs, InfiniBand fabric, the all-NVMe shared
//! parallel file system, and the power/thermal envelope that Figures 8, 9,
//! 16 (left), 18 and 21 are drawn from.
//!
//! Everything here is a *resource model*: state plus closed-form physics
//! (power as a function of activity, temperature as a function of power,
//! bandwidth shares under contention). The discrete-event crates
//! (`acme-scheduler`, `acme-training`, `acme-evaluation`) drive these models
//! and sample them through `acme-telemetry`.

#![warn(missing_docs)]

pub mod comm;
pub mod gpu;
pub mod net;
pub mod node;
pub mod power;
pub mod spares;
pub mod spec;
pub mod storage;
pub mod thermal;

pub use comm::{Collective, FabricSpec};
pub use gpu::{GpuActivity, GpuDevice};
pub use net::{FatTree, Flow, FlowSim, NetConfig, NetError, NetFabric};
pub use node::{HostMemoryBreakdown, Node};
pub use power::{ServerPowerBreakdown, ServerPowerModel};
pub use spares::SparePool;
pub use spec::{ClusterSpec, GpuSpec, NodeSpec, SchedulerKind};
pub use storage::SharedStorage;
pub use thermal::ThermalModel;
