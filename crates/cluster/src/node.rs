//! Nodes: GPUs plus host-side resources.
//!
//! Host memory is tracked as the breakdown Figure 18 reports for a Seren
//! pretraining node: training processes, the on-the-fly dataloader,
//! TensorBoard, the distributed-file-system client daemon, and a small
//! remainder of system services — typically ~123 GB of the 1 TB total,
//! which is exactly the headroom the asynchronous checkpointer (§6.1)
//! exploits.

use crate::gpu::GpuDevice;
use crate::spec::NodeSpec;

/// Host memory consumers on a pretraining node (Figure 18, GB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMemoryBreakdown {
    /// The training processes proper (parameters staged on host, CUDA
    /// context, NCCL buffers).
    pub training_gb: f64,
    /// Dataloader working set (on-the-fly loading; Megatron-style metadata
    /// preloading would be much larger).
    pub dataloader_gb: f64,
    /// TensorBoard (Figure 18 reports 6.5 GB).
    pub tensorboard_gb: f64,
    /// Distributed-FS client daemon + data/metadata caches (45.3 GB).
    pub fs_client_gb: f64,
    /// In-memory checkpoint staging used by asynchronous checkpointing.
    pub checkpoint_staging_gb: f64,
    /// Prometheus exporters, drivers, Slurm daemon, sensors (0.6 GB).
    pub system_gb: f64,
}

impl HostMemoryBreakdown {
    /// The Figure-18 snapshot: ~123 GB active out of 1 TB.
    pub fn figure18_pretraining() -> Self {
        HostMemoryBreakdown {
            training_gb: 58.2,
            dataloader_gb: 12.4,
            tensorboard_gb: 6.5,
            fs_client_gb: 45.3,
            checkpoint_staging_gb: 0.0,
            system_gb: 0.6,
        }
    }

    /// An idle node: only system services.
    pub fn idle() -> Self {
        HostMemoryBreakdown {
            training_gb: 0.0,
            dataloader_gb: 0.0,
            tensorboard_gb: 0.0,
            fs_client_gb: 2.0,
            checkpoint_staging_gb: 0.0,
            system_gb: 0.6,
        }
    }

    /// Total GB in use.
    pub fn total_gb(&self) -> f64 {
        self.training_gb
            + self.dataloader_gb
            + self.tensorboard_gb
            + self.fs_client_gb
            + self.checkpoint_staging_gb
            + self.system_gb
    }

    /// `(label, GB)` rows for rendering Figure 18.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("training processes", self.training_gb),
            ("dataloader", self.dataloader_gb),
            ("tensorboard", self.tensorboard_gb),
            ("distributed-fs client", self.fs_client_gb),
            ("checkpoint staging", self.checkpoint_staging_gb),
            ("system services", self.system_gb),
        ]
    }
}

/// One compute node.
#[derive(Debug, Clone)]
pub struct Node {
    spec: NodeSpec,
    gpus: Vec<GpuDevice>,
    memory: HostMemoryBreakdown,
    /// CPU utilization fraction (0–1) across all 128 threads.
    cpu_util: f64,
    /// Normalized IB send bandwidth (0–1 of line rate).
    ib_send: f64,
    /// Normalized IB receive bandwidth (0–1 of line rate).
    ib_recv: f64,
}

impl Node {
    /// A new idle node built from its spec.
    pub fn new(spec: NodeSpec) -> Self {
        let gpus = (0..spec.gpus).map(|_| GpuDevice::new(spec.gpu)).collect();
        Node {
            spec,
            gpus,
            memory: HostMemoryBreakdown::idle(),
            cpu_util: 0.0,
            ib_send: 0.0,
            ib_recv: 0.0,
        }
    }

    /// The node spec.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// All GPUs.
    pub fn gpus(&self) -> &[GpuDevice] {
        &self.gpus
    }

    /// Mutable access to one GPU.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn gpu_mut(&mut self, idx: usize) -> &mut GpuDevice {
        &mut self.gpus[idx]
    }

    /// Host memory breakdown.
    pub fn memory(&self) -> &HostMemoryBreakdown {
        &self.memory
    }

    /// Replace the memory breakdown.
    ///
    /// # Panics
    /// Panics if the new total exceeds the node's DRAM.
    pub fn set_memory(&mut self, memory: HostMemoryBreakdown) {
        assert!(
            memory.total_gb() <= self.spec.host_memory_gb,
            "host memory over-committed: {:.1} GB > {:.1} GB",
            memory.total_gb(),
            self.spec.host_memory_gb
        );
        self.memory = memory;
    }

    /// Free host memory, GB.
    pub fn free_memory_gb(&self) -> f64 {
        self.spec.host_memory_gb - self.memory.total_gb()
    }

    /// Host memory utilization fraction.
    pub fn memory_fraction(&self) -> f64 {
        self.memory.total_gb() / self.spec.host_memory_gb
    }

    /// CPU utilization fraction.
    pub fn cpu_util(&self) -> f64 {
        self.cpu_util
    }

    /// Set CPU utilization (clamped to 0–1).
    pub fn set_cpu_util(&mut self, util: f64) {
        self.cpu_util = util.clamp(0.0, 1.0);
    }

    /// Normalized IB (send, recv) bandwidth.
    pub fn ib_bandwidth(&self) -> (f64, f64) {
        (self.ib_send, self.ib_recv)
    }

    /// Set normalized IB bandwidth. LLM collectives are symmetric (Figure
    /// 7d: the send and receive CDFs overlap), so most callers pass equal
    /// values.
    pub fn set_ib_bandwidth(&mut self, send: f64, recv: f64) {
        self.ib_send = send.clamp(0.0, 1.0);
        self.ib_recv = recv.clamp(0.0, 1.0);
    }

    /// Sum of GPU power draws, W.
    pub fn gpu_power_w(&self) -> f64 {
        self.gpus.iter().map(|g| g.power_w()).sum()
    }

    /// Number of idle GPUs.
    pub fn idle_gpus(&self) -> usize {
        self.gpus.iter().filter(|g| g.is_idle()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuActivity;
    use crate::spec::ClusterSpec;

    fn node() -> Node {
        Node::new(ClusterSpec::seren().node)
    }

    #[test]
    fn new_node_is_idle() {
        let n = node();
        assert_eq!(n.gpus().len(), 8);
        assert_eq!(n.idle_gpus(), 8);
        assert_eq!(n.cpu_util(), 0.0);
        // 8 idle A100s at 60 W.
        assert_eq!(n.gpu_power_w(), 480.0);
    }

    #[test]
    fn figure18_breakdown_totals() {
        let m = HostMemoryBreakdown::figure18_pretraining();
        // The paper reports ~123 GB of the 1 TB in use.
        assert!(
            (m.total_gb() - 123.0).abs() < 1.0,
            "total = {}",
            m.total_gb()
        );
        assert_eq!(m.tensorboard_gb, 6.5);
        assert_eq!(m.fs_client_gb, 45.3);
        assert_eq!(m.rows().len(), 6);
    }

    #[test]
    fn memory_accounting() {
        let mut n = node();
        n.set_memory(HostMemoryBreakdown::figure18_pretraining());
        assert!(
            n.memory_fraction() < 0.5,
            "CPU memory stays under 50% (Fig 7b)"
        );
        assert!(n.free_memory_gb() > 800.0);
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn memory_overcommit_panics() {
        let mut n = node();
        let mut m = HostMemoryBreakdown::idle();
        m.checkpoint_staging_gb = 2000.0;
        n.set_memory(m);
    }

    #[test]
    fn gpu_state_flows_through() {
        let mut n = node();
        n.gpu_mut(3).set_activity(GpuActivity {
            sm_active: 1.0,
            tensor_active: 0.5,
            memory_used_gb: 60.0,
        });
        assert_eq!(n.idle_gpus(), 7);
        assert!(n.gpu_power_w() > 480.0);
    }

    #[test]
    fn clamps_cpu_and_ib() {
        let mut n = node();
        n.set_cpu_util(3.0);
        assert_eq!(n.cpu_util(), 1.0);
        n.set_ib_bandwidth(-1.0, 2.0);
        assert_eq!(n.ib_bandwidth(), (0.0, 1.0));
    }
}
