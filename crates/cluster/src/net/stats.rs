//! Flow-level network counters.
//!
//! Mirrors `acme_sim_core::stats`: every [`FlowSim`](super::FlowSim) run
//! deposits how many flows it routed and the time-averaged utilization of
//! its busiest link into a thread-local accumulator. The experiment
//! harness drains the accumulator per experiment (and per shard,
//! forwarding worker-thread totals to the calling thread) so
//! `--timings-json` can report `flows_routed` and `max_link_utilization`
//! without plumbing through simulation code.

use std::cell::Cell;

/// Flow-scheduler totals from one or more [`FlowSim`](super::FlowSim)
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetStats {
    /// Flows routed through a fat tree.
    pub flows_routed: u64,
    /// Peak time-averaged utilization (0..=1) of the busiest link across
    /// runs.
    pub max_link_utilization: f64,
}

impl NetStats {
    /// All-zero counters.
    pub const ZERO: NetStats = NetStats {
        flows_routed: 0,
        max_link_utilization: 0.0,
    };

    /// Combine two totals: flow counts add, utilizations take the maximum
    /// (the runs happened at different times or in different shards;
    /// summing utilizations would overstate the peak).
    pub fn merge(self, other: NetStats) -> NetStats {
        NetStats {
            flows_routed: self.flows_routed + other.flows_routed,
            max_link_utilization: self.max_link_utilization.max(other.max_link_utilization),
        }
    }
}

thread_local! {
    static FLOWS: Cell<u64> = const { Cell::new(0) };
    static UTILIZATION: Cell<f64> = const { Cell::new(0.0) };
}

/// Deposit one scheduler run's totals. Called by
/// [`FlowSim::run`](super::FlowSim::run); harness code normally only
/// needs [`take`].
pub fn record(flows: u64, utilization: f64) {
    absorb(NetStats {
        flows_routed: flows,
        max_link_utilization: utilization,
    });
}

/// Fold `stats` into the calling thread's accumulator (used by the shard
/// pool to forward worker totals in shard order).
pub fn absorb(stats: NetStats) {
    FLOWS.with(|c| c.set(c.get() + stats.flows_routed));
    UTILIZATION.with(|c| c.set(c.get().max(stats.max_link_utilization)));
}

/// Drain the calling thread's accumulated totals, resetting them to zero.
pub fn take() -> NetStats {
    NetStats {
        flows_routed: FLOWS.with(|c| c.replace(0)),
        max_link_utilization: UTILIZATION.with(|c| c.replace(0.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_flows_and_maxes_utilization() {
        let a = NetStats {
            flows_routed: 4,
            max_link_utilization: 0.6,
        };
        let b = NetStats {
            flows_routed: 3,
            max_link_utilization: 0.9,
        };
        let m = a.merge(b);
        assert_eq!(m.flows_routed, 7);
        assert_eq!(m.max_link_utilization, 0.9);
        assert_eq!(NetStats::ZERO.merge(a), a);
    }

    #[test]
    fn absorb_take_roundtrip() {
        take(); // isolate from runs earlier on this thread
        record(5, 0.4);
        record(2, 0.8);
        let got = take();
        assert_eq!(got.flows_routed, 7);
        assert_eq!(got.max_link_utilization, 0.8);
        assert_eq!(take(), NetStats::ZERO, "take drains");
    }
}
