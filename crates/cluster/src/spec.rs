//! Static hardware specifications — Table 1 of the paper.

/// Which production scheduler fronts the cluster (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Seren runs atop Slurm.
    Slurm,
    /// Kalos runs atop Kubernetes.
    Kubernetes,
}

/// One GPU model. Acme is homogeneous: NVIDIA A100-SXM 80 GB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Framebuffer capacity, GB.
    pub memory_gb: f64,
    /// Idle draw, W (the paper observes idle A100s at ~60 W).
    pub idle_power_w: f64,
    /// Thermal design power, W.
    pub tdp_w: f64,
    /// Observed worst-case draw, W (the paper sees up to 600 W).
    pub max_power_w: f64,
    /// Dense BF16 tensor throughput, TFLOP/s (with sparsity off).
    pub peak_tflops_bf16: f64,
}

impl GpuSpec {
    /// The A100-SXM 80 GB every Acme node carries.
    pub const fn a100_sxm_80gb() -> Self {
        GpuSpec {
            name: "NVIDIA A100-SXM 80GB",
            memory_gb: 80.0,
            idle_power_w: 60.0,
            tdp_w: 400.0,
            max_power_w: 600.0,
            peak_tflops_bf16: 312.0,
        }
    }
}

/// Per-node hardware (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Logical CPUs (2× Xeon Platinum 8358P = 128 threads).
    pub cpus: u32,
    /// GPUs per node.
    pub gpus: u32,
    /// Host DRAM, GB.
    pub host_memory_gb: f64,
    /// Application-facing InfiniBand HCAs.
    pub ib_hcas: u32,
    /// Line rate per HCA, Gb/s.
    pub ib_gbps_per_hca: f64,
    /// Whether a dedicated storage HCA exists (Kalos) or storage shares a
    /// 25 Gb/s NIC (Seren, per Figure 16).
    pub dedicated_storage_hca: bool,
    /// Storage NIC bandwidth, Gb/s.
    pub storage_nic_gbps: f64,
    /// GPU model.
    pub gpu: GpuSpec,
}

impl NodeSpec {
    /// Total application IB bandwidth, Gb/s.
    pub fn total_ib_gbps(&self) -> f64 {
        self.ib_hcas as f64 * self.ib_gbps_per_hca
    }

    /// CPU-to-GPU ratio; the paper notes 16 CPUs per GPU drives the CPU
    /// underutilization of Figure 7(c).
    pub fn cpus_per_gpu(&self) -> f64 {
        self.cpus as f64 / self.gpus as f64
    }
}

/// A whole cluster (one column of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Cluster name.
    pub name: &'static str,
    /// Node count.
    pub nodes: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Production scheduler fronting this cluster.
    pub scheduler: SchedulerKind,
}

impl ClusterSpec {
    /// Seren: 286 nodes × 8 A100, 1 TB host memory, one 200 Gb/s HCA,
    /// storage over a shared 25 Gb/s NIC, Slurm.
    pub fn seren() -> Self {
        ClusterSpec {
            name: "Seren",
            nodes: 286,
            node: NodeSpec {
                cpus: 128,
                gpus: 8,
                host_memory_gb: 1024.0,
                ib_hcas: 1,
                ib_gbps_per_hca: 200.0,
                dedicated_storage_hca: false,
                storage_nic_gbps: 25.0,
                gpu: GpuSpec::a100_sxm_80gb(),
            },
            scheduler: SchedulerKind::Slurm,
        }
    }

    /// Kalos: 302 nodes × 8 A100, 2 TB host memory, four application HCAs
    /// plus one dedicated storage HCA (all 200 Gb/s), Kubernetes.
    pub fn kalos() -> Self {
        ClusterSpec {
            name: "Kalos",
            nodes: 302,
            node: NodeSpec {
                cpus: 128,
                gpus: 8,
                host_memory_gb: 2048.0,
                ib_hcas: 4,
                ib_gbps_per_hca: 200.0,
                dedicated_storage_hca: true,
                storage_nic_gbps: 200.0,
                gpu: GpuSpec::a100_sxm_80gb(),
            },
            scheduler: SchedulerKind::Kubernetes,
        }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.node.gpus
    }

    /// Total logical CPUs in the cluster.
    pub fn total_cpus(&self) -> u32 {
        self.nodes * self.node.cpus
    }

    /// Both Acme clusters, Seren first.
    pub fn acme() -> [ClusterSpec; 2] {
        [ClusterSpec::seren(), ClusterSpec::kalos()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_seren() {
        let s = ClusterSpec::seren();
        assert_eq!(s.nodes, 286);
        assert_eq!(s.node.cpus, 128);
        assert_eq!(s.node.gpus, 8);
        assert_eq!(s.node.host_memory_gb, 1024.0);
        assert_eq!(s.node.total_ib_gbps(), 200.0);
        assert_eq!(s.scheduler, SchedulerKind::Slurm);
        assert_eq!(s.total_gpus(), 2288);
    }

    #[test]
    fn table1_kalos() {
        let k = ClusterSpec::kalos();
        assert_eq!(k.nodes, 302);
        assert_eq!(k.node.host_memory_gb, 2048.0);
        assert_eq!(k.node.total_ib_gbps(), 800.0);
        assert!(k.node.dedicated_storage_hca);
        assert_eq!(k.scheduler, SchedulerKind::Kubernetes);
        assert_eq!(k.total_gpus(), 2416);
    }

    #[test]
    fn acme_total_matches_paper() {
        let [s, k] = ClusterSpec::acme();
        // 4,704 A100s in total (§1).
        assert_eq!(s.total_gpus() + k.total_gpus(), 4704);
    }

    #[test]
    fn cpu_gpu_ratio_is_sixteen() {
        assert_eq!(ClusterSpec::seren().node.cpus_per_gpu(), 16.0);
    }

    #[test]
    fn a100_envelope() {
        let g = GpuSpec::a100_sxm_80gb();
        assert_eq!(g.memory_gb, 80.0);
        assert!(g.idle_power_w < g.tdp_w && g.tdp_w < g.max_power_w);
    }
}
