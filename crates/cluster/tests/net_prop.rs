//! Property-based tests for the fat-tree network substrate.

use acme_cluster::comm::{Collective, FabricSpec};
use acme_cluster::net::{max_min_rates, Flow, FlowSim, NetConfig, NetFabric};
use acme_sim_core::{SimRng, SimTime};
use proptest::prelude::*;

/// A deterministic random flow set over a k=8 tree: `n` flows with
/// seed-derived endpoints, sizes, tags and staggered starts.
fn random_flows(seed: u64, n: usize, hosts: u32) -> Vec<Flow> {
    let mut rng = SimRng::new(seed).fork(90);
    (0..n)
        .map(|_| {
            let src = rng.below(u64::from(hosts)) as u32;
            let mut dst = rng.below(u64::from(hosts)) as u32;
            if dst == src {
                dst = (dst + 1) % hosts;
            }
            Flow {
                src,
                dst,
                gb: 0.5 + rng.f64() * 50.0,
                start: SimTime::from_secs_f64(rng.f64() * 10.0),
                tag: rng.below(1 << 32),
            }
        })
        .collect()
}

proptest! {
    /// Same seed ⇒ identical flow schedules: the scheduler is a pure
    /// function of the flow set and the fabric, so replaying the same
    /// seed-derived flows yields byte-identical completion times.
    #[test]
    fn same_seed_same_flow_schedule(seed in 0u64..1000, n in 1usize..24) {
        let spec = FabricSpec::kalos();
        let fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, 8));
        let flows = random_flows(seed, n, fabric.tree().hosts());
        let again = random_flows(seed, n, fabric.tree().hosts());
        prop_assert_eq!(&flows, &again);
        let a = FlowSim::new(&fabric).run(&flows);
        let b = FlowSim::new(&fabric).run(&flows);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.finish, y.finish);
        }
    }

    /// Max-min allocations conserve capacity on every link and are
    /// work-conserving: each flow with a positive rate crosses at least
    /// one saturated (bottleneck) link, and only flows over dead links
    /// stall at rate 0.
    #[test]
    fn max_min_conserves_and_saturates(seed in 0u64..1000, n in 1usize..32) {
        let spec = FabricSpec::kalos();
        let mut fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, 8));
        // Exercise degraded trees too: kill one uplink half the time.
        if seed % 2 == 1 {
            fabric.fail_edge_uplink((seed % 32) as u32, (seed % 4) as u32);
        }
        let tree = fabric.tree().clone();
        let flows = random_flows(seed, n, tree.hosts());
        let paths: Vec<Vec<u32>> = flows.iter().map(|f| tree.route(f.src, f.dst, f.tag)).collect();
        let capacity = fabric.capacities();
        let rates = max_min_rates(&paths, &capacity);

        // Conservation: per-link carried rate never exceeds capacity.
        let mut carried = vec![0.0f64; capacity.len()];
        for (p, r) in paths.iter().zip(&rates) {
            for &l in p {
                carried[l as usize] += r;
            }
        }
        for (l, &c) in carried.iter().enumerate() {
            prop_assert!(c <= capacity[l] + 1e-6, "link {l} carries {c} over {}", capacity[l]);
        }

        // Work conservation: every running flow is pinned by a saturated
        // link on its own path; every stalled flow crosses a dead link.
        for (i, (p, &r)) in paths.iter().zip(&rates).enumerate() {
            if r > 0.0 {
                let bottlenecked = p.iter().any(|&l| {
                    carried[l as usize] >= capacity[l as usize] - 1e-6
                });
                prop_assert!(bottlenecked, "flow {i} runs at {r} with no saturated link");
            } else {
                prop_assert!(
                    p.iter().any(|&l| capacity[l as usize] <= 0.0),
                    "flow {i} stalled without a dead link"
                );
            }
        }
    }

    /// On a healthy non-blocking tree the topology-derived collective
    /// price is the *same float* as the analytic `comm` price, over random
    /// collective mixes, sizes and placements.
    #[test]
    fn healthy_tree_prices_equal_analytic(
        which in 0usize..5,
        bytes in 1.0f64..1e10,
        nodes in 2u32..64,
        offset in 0u32..64,
    ) {
        let collective = [
            Collective::AllReduce,
            Collective::AllGather,
            Collective::ReduceScatter,
            Collective::AllToAll,
            Collective::Broadcast,
        ][which];
        let spec = FabricSpec::kalos();
        let fabric = NetFabric::new(spec, NetConfig::for_fabric(&spec, 8));
        let total = fabric.tree().hosts();
        let hosts: Vec<u32> = (0..nodes).map(|i| (offset + i) % total).collect();
        let gpus = nodes * spec.gpus_per_node;
        let via_tree = fabric.collective_secs(collective, bytes, gpus, &hosts);
        let analytic = spec.collective_secs(collective, bytes, gpus);
        prop_assert_eq!(
            via_tree.to_bits(),
            analytic.to_bits(),
            "tree {} vs analytic {}",
            via_tree,
            analytic
        );
    }
}
