//! Property-based tests for the hardware models.

use acme_cluster::comm::{Collective, FabricSpec};
use acme_cluster::{GpuActivity, GpuDevice, GpuSpec, SharedStorage, ThermalModel};
use proptest::prelude::*;

proptest! {
    /// GPU power always lies within the physical envelope and is monotone
    /// in SM activity for fixed tensor activity.
    #[test]
    fn power_within_envelope(sm in 0.0f64..=1.0, tc in 0.0f64..=1.0, mem in 0.0f64..100.0) {
        let mut g = GpuDevice::new(GpuSpec::a100_sxm_80gb());
        g.set_activity(GpuActivity { sm_active: sm, tensor_active: tc, memory_used_gb: mem });
        let p = g.power_w();
        prop_assert!((60.0..=600.0).contains(&p));
        // Monotone in sm.
        let mut g2 = GpuDevice::new(GpuSpec::a100_sxm_80gb());
        g2.set_activity(GpuActivity { sm_active: (sm * 0.5).min(sm), tensor_active: tc, memory_used_gb: mem });
        prop_assert!(g2.power_w() <= p + 1e-9);
    }

    /// Thermal model: memory ≥ core, both monotone in power, cooling
    /// factor reduces temperature.
    #[test]
    fn thermal_monotone(p1 in 60.0f64..600.0, p2 in 60.0f64..600.0) {
        let m = ThermalModel::normal();
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(m.core_temp_c(lo) <= m.core_temp_c(hi));
        prop_assert!(m.memory_temp_c(lo) >= m.core_temp_c(lo));
        let upgraded = ThermalModel::upgraded_cooling();
        prop_assert!(upgraded.memory_temp_c(hi) < m.memory_temp_c(hi));
    }

    /// Storage: per-trial speed never increases with concurrency and never
    /// exceeds the single-stream cap.
    #[test]
    fn storage_speed_monotone(trials in 1u32..64, nodes in 1u32..32) {
        let s = SharedStorage::seren();
        let v = s.per_trial_speed_gbps(trials, nodes);
        prop_assert!(v > 0.0 && v <= s.single_stream_gbps + 1e-12);
        let v_more = s.per_trial_speed_gbps(trials + 1, nodes);
        prop_assert!(v_more <= v + 1e-12);
        // Load time is consistent with speed.
        let t = s.remote_load_secs(14.0, trials, nodes);
        prop_assert!((t - 14.0 / v).abs() < 1e-9);
    }

    /// Collectives: time is positive, monotone in bytes, and allreduce
    /// dominates allgather at the same size.
    #[test]
    fn collective_time_sane(bytes in 1.0f64..1e10, gpus in 2u32..2048) {
        let f = FabricSpec::kalos();
        let ar = f.collective_secs(Collective::AllReduce, bytes, gpus);
        let ag = f.collective_secs(Collective::AllGather, bytes, gpus);
        prop_assert!(ar > 0.0 && ag > 0.0);
        prop_assert!(ar >= ag - 1e-12);
        let bigger = f.collective_secs(Collective::AllReduce, bytes * 2.0, gpus);
        prop_assert!(bigger >= ar);
    }
}
