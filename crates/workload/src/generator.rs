//! Calibrated Seren/Kalos workload generators.
//!
//! Each cluster is described by a set of per-type profiles — count weight,
//! GPU-demand distribution, duration distribution, and final-status mix —
//! whose parameters were solved so that the *expected* aggregates match the
//! paper's published numbers:
//!
//! * Kalos: evaluation = 92.9% of jobs but 0.8% of GPU time; pretraining =
//!   3.2% of jobs but 94.0% of GPU time; average request 26.8 GPUs; ≥256-GPU
//!   jobs take > 96% of GPU time (§3.1–3.2, Figures 3–5);
//! * Seren: pretraining = 0.9% of jobs, 69.5% of GPU time; SFT and MLLM
//!   appear only here; average request 5.7 GPUs;
//! * both: median job runtime ≈ 2 minutes (Figure 2a); ~40% of jobs fail
//!   using ~10% of resources, ~7% are canceled holding > 60% of resources
//!   (Figure 17).
//!
//! Durations are log-normal (median, mean) with a status-dependent
//! multiplier: failures cut runs short (errors strike early, §5), while
//! canceled jobs are disproportionately the long-running pretrains users
//! eventually stop (Appendix A.1).

use acme_sim_core::dist::{Categorical, Distribution, Exponential, LogNormal};
use acme_sim_core::{SimDuration, SimRng, SimTime};

use crate::job::{Cluster, JobRecord, JobStatus, JobType};

/// Calibration for one workload type in one cluster.
#[derive(Debug, Clone)]
pub struct TypeProfile {
    /// Workload category.
    pub job_type: JobType,
    /// Relative share of job count.
    pub count_weight: f64,
    /// `(gpus, weight)` demand buckets.
    pub demand: Vec<(u32, f64)>,
    /// Base runtime median, minutes.
    pub duration_median_mins: f64,
    /// Base runtime mean, minutes.
    pub duration_mean_mins: f64,
    /// `(completed, failed, canceled)` weights.
    pub status_weights: [f64; 3],
    /// Runtime multiplier per status, same order.
    pub status_duration_mult: [f64; 3],
}

impl TypeProfile {
    /// Expected GPUs requested per job.
    pub fn mean_gpus(&self) -> f64 {
        let total: f64 = self.demand.iter().map(|&(_, w)| w).sum();
        self.demand.iter().map(|&(g, w)| g as f64 * w / total).sum()
    }
}

/// A generated trace for one cluster.
#[derive(Debug, Clone)]
pub struct ClusterWorkload {
    /// Which cluster.
    pub cluster: Cluster,
    /// Jobs sorted by submission time.
    pub jobs: Vec<JobRecord>,
}

/// Samples a cluster's six-month job population.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    cluster: Cluster,
    profiles: Vec<TypeProfile>,
    jobs_per_day: f64,
}

impl WorkloadGenerator {
    /// The Kalos generator (§2.3: 20K GPU jobs over six months).
    pub fn kalos() -> Self {
        WorkloadGenerator {
            cluster: Cluster::Kalos,
            jobs_per_day: 110.0,
            profiles: vec![
                TypeProfile {
                    job_type: JobType::Evaluation,
                    count_weight: 92.9,
                    demand: vec![(1, 0.70), (2, 0.15), (4, 0.10), (8, 0.05)],
                    duration_median_mins: 1.5,
                    duration_mean_mins: 15.0,
                    status_weights: [0.57, 0.38, 0.05],
                    status_duration_mult: [1.0, 0.35, 3.0],
                },
                TypeProfile {
                    job_type: JobType::Pretrain,
                    count_weight: 3.2,
                    demand: vec![
                        (128, 0.05),
                        (256, 0.20),
                        (512, 0.35),
                        (1024, 0.30),
                        (2048, 0.10),
                    ],
                    duration_median_mins: 20.0,
                    duration_mean_mins: 73.0,
                    status_weights: [0.35, 0.30, 0.35],
                    status_duration_mult: [1.0, 0.40, 3.0],
                },
                TypeProfile {
                    job_type: JobType::Debug,
                    count_weight: 2.0,
                    demand: vec![(1, 0.30), (8, 0.30), (32, 0.20), (128, 0.15), (512, 0.05)],
                    duration_median_mins: 8.0,
                    duration_mean_mins: 91.0,
                    status_weights: [0.50, 0.40, 0.10],
                    status_duration_mult: [1.0, 0.50, 2.0],
                },
                TypeProfile {
                    job_type: JobType::Other,
                    count_weight: 1.9,
                    demand: vec![(8, 0.40), (32, 0.30), (128, 0.20), (256, 0.10)],
                    duration_median_mins: 5.0,
                    duration_mean_mins: 59.0,
                    status_weights: [0.55, 0.40, 0.05],
                    status_duration_mult: [1.0, 0.50, 2.0],
                },
            ],
        }
    }

    /// The Seren generator (§2.3: 664K GPU jobs over six months).
    pub fn seren() -> Self {
        WorkloadGenerator {
            cluster: Cluster::Seren,
            jobs_per_day: 3630.0,
            profiles: vec![
                TypeProfile {
                    job_type: JobType::Evaluation,
                    count_weight: 78.0,
                    demand: vec![(1, 0.70), (2, 0.15), (4, 0.10), (8, 0.05)],
                    duration_median_mins: 1.5,
                    duration_mean_mins: 15.0,
                    status_weights: [0.57, 0.38, 0.05],
                    status_duration_mult: [1.0, 0.35, 3.0],
                },
                TypeProfile {
                    job_type: JobType::Pretrain,
                    count_weight: 0.9,
                    demand: vec![
                        (64, 0.10),
                        (128, 0.25),
                        (256, 0.35),
                        (512, 0.25),
                        (1024, 0.05),
                    ],
                    duration_median_mins: 25.0,
                    duration_mean_mins: 81.0,
                    status_weights: [0.30, 0.30, 0.40],
                    status_duration_mult: [1.0, 0.40, 3.2],
                },
                TypeProfile {
                    job_type: JobType::Sft,
                    count_weight: 5.0,
                    demand: vec![(8, 0.50), (16, 0.30), (32, 0.20)],
                    duration_median_mins: 20.0,
                    duration_mean_mins: 60.0,
                    status_weights: [0.60, 0.35, 0.05],
                    status_duration_mult: [1.0, 0.35, 2.0],
                },
                TypeProfile {
                    job_type: JobType::Mllm,
                    count_weight: 4.0,
                    demand: vec![(1, 0.20), (8, 0.40), (16, 0.20), (32, 0.15), (64, 0.05)],
                    duration_median_mins: 10.0,
                    duration_mean_mins: 80.0,
                    status_weights: [0.50, 0.40, 0.10],
                    status_duration_mult: [1.0, 0.40, 2.0],
                },
                TypeProfile {
                    job_type: JobType::Debug,
                    count_weight: 9.0,
                    demand: vec![(1, 0.45), (4, 0.20), (8, 0.20), (32, 0.12), (128, 0.03)],
                    duration_median_mins: 5.0,
                    duration_mean_mins: 40.0,
                    status_weights: [0.50, 0.40, 0.10],
                    status_duration_mult: [1.0, 0.50, 2.0],
                },
                TypeProfile {
                    job_type: JobType::Other,
                    count_weight: 3.1,
                    demand: vec![(1, 0.50), (4, 0.25), (8, 0.25)],
                    duration_median_mins: 3.0,
                    duration_mean_mins: 30.0,
                    status_weights: [0.55, 0.40, 0.05],
                    status_duration_mult: [1.0, 0.50, 2.0],
                },
            ],
        }
    }

    /// The cluster this generator models.
    pub fn cluster(&self) -> Cluster {
        self.cluster
    }

    /// The per-type calibration table.
    pub fn profiles(&self) -> &[TypeProfile] {
        &self.profiles
    }

    /// Jobs submitted per day at calibration scale.
    pub fn jobs_per_day(&self) -> f64 {
        self.jobs_per_day
    }

    /// Generate a trace covering `days` of submissions, starting at `t = 0`.
    ///
    /// Arrivals follow a Poisson process at the calibrated rate; job ids
    /// start at `first_id`. Queue delays are zero — the scheduler simulation
    /// fills them in for Figure 6.
    ///
    /// This is exactly [`Self::stream`] collected: the closed-world trace
    /// is the materialization of the open-system arrival stream, drawing
    /// the same RNG values in the same order.
    pub fn generate(&self, rng: &mut SimRng, days: f64, first_id: u64) -> ClusterWorkload {
        ClusterWorkload {
            cluster: self.cluster,
            jobs: self.stream(rng, days, first_id).collect(),
        }
    }

    /// Lazily yield `days` of submissions one [`JobRecord`] at a time —
    /// the open-system view of the same process [`Self::generate`]
    /// materializes. The generator borrows `rng`, so sequential callers
    /// observe the identical post-stream RNG state the closed-world loop
    /// left behind.
    pub fn stream<'a>(
        &'a self,
        rng: &'a mut SimRng,
        days: f64,
        first_id: u64,
    ) -> StreamingGenerator<'a> {
        StreamingGenerator {
            generator: self,
            rng,
            horizon: SimDuration::from_secs_f64(days * 86_400.0),
            interarrival: Exponential::with_mean(86_400.0 / self.jobs_per_day),
            type_picker: Categorical::new(
                &self
                    .profiles
                    .iter()
                    .map(|p| p.count_weight)
                    .collect::<Vec<_>>(),
            ),
            samplers: self.profiles.iter().map(ProfileSampler::new).collect(),
            t: SimTime::ZERO,
            id: first_id,
            done: false,
        }
    }
}

/// A lazy open-system arrival stream over one cluster's calibrated
/// workload: each `next()` draws one Poisson inter-arrival gap and one
/// job's type/demand/status/duration, in the exact order the historical
/// closed-world loop drew them. Memory is O(1) in stream length, which is
/// what lets the fleet experiment push 10⁶⁺ jobs without materializing a
/// trace.
pub struct StreamingGenerator<'a> {
    generator: &'a WorkloadGenerator,
    rng: &'a mut SimRng,
    horizon: SimDuration,
    interarrival: Exponential,
    type_picker: Categorical,
    samplers: Vec<ProfileSampler>,
    t: SimTime,
    id: u64,
    done: bool,
}

impl StreamingGenerator<'_> {
    /// The submission clock after the most recent arrival.
    pub fn current_time(&self) -> SimTime {
        self.t
    }

    /// The id the next yielded job will carry.
    pub fn next_id(&self) -> u64 {
        self.id
    }
}

impl Iterator for StreamingGenerator<'_> {
    type Item = JobRecord;

    fn next(&mut self) -> Option<JobRecord> {
        if self.done {
            return None;
        }
        self.t += SimDuration::from_secs_f64(self.interarrival.sample(self.rng));
        if self.t.saturating_since(SimTime::ZERO) > self.horizon {
            self.done = true;
            return None;
        }
        let p = self.type_picker.sample_index(self.rng);
        let job = self.samplers[p].sample(
            self.generator.cluster,
            self.id,
            self.t,
            &self.generator.profiles[p],
            self.rng,
        );
        self.id += 1;
        Some(job)
    }
}

/// Cached samplers for one profile. `pub(crate)` so the fleet stream in
/// [`crate::stream`] can draw per-job attributes with the exact
/// closed-world draw order.
pub(crate) struct ProfileSampler {
    demand: Categorical,
    duration: LogNormal,
    status: Categorical,
}

impl ProfileSampler {
    pub(crate) fn new(p: &TypeProfile) -> Self {
        ProfileSampler {
            demand: Categorical::new(&p.demand.iter().map(|&(_, w)| w).collect::<Vec<_>>()),
            duration: LogNormal::from_median_mean(p.duration_median_mins, p.duration_mean_mins),
            status: Categorical::new(&p.status_weights),
        }
    }

    pub(crate) fn sample(
        &self,
        cluster: Cluster,
        id: u64,
        submit: SimTime,
        profile: &TypeProfile,
        rng: &mut SimRng,
    ) -> JobRecord {
        let gpus = profile.demand[self.demand.sample_index(rng)].0;
        let status_idx = self.status.sample_index(rng);
        let status = [JobStatus::Completed, JobStatus::Failed, JobStatus::Canceled][status_idx];
        let mins = self.duration.sample(rng) * profile.status_duration_mult[status_idx];
        // Floor at 5 simulated seconds: even instantly failing jobs occupy
        // the scheduler briefly.
        let duration = SimDuration::from_secs_f64((mins * 60.0).max(5.0));
        JobRecord {
            id,
            cluster,
            job_type: profile.job_type,
            submit,
            queue_delay: SimDuration::ZERO,
            duration,
            gpus,
            status,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_gpu_seconds(jobs: &[JobRecord]) -> f64 {
        jobs.iter().map(|j| j.gpu_seconds()).sum()
    }

    fn share_of_count(jobs: &[JobRecord], ty: JobType) -> f64 {
        jobs.iter().filter(|j| j.job_type == ty).count() as f64 / jobs.len() as f64
    }

    fn share_of_time(jobs: &[JobRecord], ty: JobType) -> f64 {
        jobs.iter()
            .filter(|j| j.job_type == ty)
            .map(|j| j.gpu_seconds())
            .sum::<f64>()
            / total_gpu_seconds(jobs)
    }

    fn kalos_trace() -> ClusterWorkload {
        let mut rng = SimRng::new(42);
        WorkloadGenerator::kalos().generate(&mut rng, 183.0, 0)
    }

    fn seren_trace() -> ClusterWorkload {
        let mut rng = SimRng::new(43);
        // A month of Seren is ~110K jobs — plenty for distribution checks.
        WorkloadGenerator::seren().generate(&mut rng, 30.0, 0)
    }

    #[test]
    fn kalos_job_count_scale_matches_trace() {
        let w = kalos_trace();
        // §2.3: ~20K GPU jobs over six months.
        assert!(
            (15_000..25_000).contains(&w.jobs.len()),
            "n = {}",
            w.jobs.len()
        );
    }

    #[test]
    fn kalos_count_and_time_shares() {
        let w = kalos_trace();
        let eval_count = share_of_count(&w.jobs, JobType::Evaluation);
        let pre_count = share_of_count(&w.jobs, JobType::Pretrain);
        let eval_time = share_of_time(&w.jobs, JobType::Evaluation);
        let pre_time = share_of_time(&w.jobs, JobType::Pretrain);
        assert!(
            (eval_count - 0.929).abs() < 0.01,
            "eval count {eval_count:.3}"
        );
        assert!(
            (pre_count - 0.032).abs() < 0.006,
            "pretrain count {pre_count:.3}"
        );
        assert!(eval_time < 0.02, "eval time {eval_time:.4}");
        assert!(
            (0.88..0.97).contains(&pre_time),
            "pretrain time {pre_time:.3}"
        );
    }

    #[test]
    fn kalos_average_gpus_near_paper() {
        let w = kalos_trace();
        let avg = w.jobs.iter().map(|j| j.gpus as f64).sum::<f64>() / w.jobs.len() as f64;
        // Table 2: 26.8 average requested GPUs in Kalos.
        assert!((22.0..33.0).contains(&avg), "avg gpus {avg:.1}");
    }

    #[test]
    fn kalos_demand_skew_matches_fig3() {
        let w = kalos_trace();
        let total = total_gpu_seconds(&w.jobs);
        let single: f64 = w
            .jobs
            .iter()
            .filter(|j| j.gpus == 1)
            .map(|j| j.gpu_seconds())
            .sum();
        let large: f64 = w
            .jobs
            .iter()
            .filter(|j| j.gpus >= 256)
            .map(|j| j.gpu_seconds())
            .sum();
        // Single-GPU jobs: majority of count, < 2% of GPU time.
        let single_count =
            w.jobs.iter().filter(|j| j.gpus == 1).count() as f64 / w.jobs.len() as f64;
        assert!(
            single_count > 0.5,
            "single-GPU count share {single_count:.2}"
        );
        assert!(
            single / total < 0.02,
            "single-GPU time share {:.4}",
            single / total
        );
        // ≥256-GPU jobs dominate GPU time (paper: > 96%).
        assert!(
            large / total > 0.90,
            "large-job time share {:.3}",
            large / total
        );
        // < 7% of jobs request more than 8 GPUs.
        let over8 = w.jobs.iter().filter(|j| j.gpus > 8).count() as f64 / w.jobs.len() as f64;
        assert!(over8 < 0.08, "over-8 count share {over8:.3}");
    }

    #[test]
    fn median_duration_is_about_two_minutes() {
        for trace in [kalos_trace(), seren_trace()] {
            let mut durs: Vec<f64> = trace
                .jobs
                .iter()
                .map(|j| j.duration.as_mins_f64())
                .collect();
            durs.sort_by(|a, b| a.total_cmp(b));
            let med = durs[durs.len() / 2];
            assert!(
                (1.0..4.0).contains(&med),
                "{}: median {med:.2} min",
                trace.cluster.label()
            );
        }
    }

    #[test]
    fn seren_count_and_time_shares() {
        let w = seren_trace();
        let pre_count = share_of_count(&w.jobs, JobType::Pretrain);
        let pre_time = share_of_time(&w.jobs, JobType::Pretrain);
        assert!(
            (pre_count - 0.009).abs() < 0.003,
            "pretrain count {pre_count:.4}"
        );
        assert!(
            (0.60..0.78).contains(&pre_time),
            "pretrain time {pre_time:.3}"
        );
        // SFT and MLLM exist only in Seren.
        assert!(share_of_count(&w.jobs, JobType::Sft) > 0.02);
        assert!(share_of_count(&w.jobs, JobType::Mllm) > 0.02);
        let k = kalos_trace();
        assert_eq!(share_of_count(&k.jobs, JobType::Sft), 0.0);
        assert_eq!(share_of_count(&k.jobs, JobType::Mllm), 0.0);
    }

    #[test]
    fn figure17_status_breakdown() {
        for trace in [kalos_trace(), seren_trace()] {
            let jobs = &trace.jobs;
            let n = jobs.len() as f64;
            let total = total_gpu_seconds(jobs);
            let count = |s: JobStatus| jobs.iter().filter(|j| j.status == s).count() as f64 / n;
            let time = |s: JobStatus| {
                jobs.iter()
                    .filter(|j| j.status == s)
                    .map(|j| j.gpu_seconds())
                    .sum::<f64>()
                    / total
            };
            let name = trace.cluster.label();
            assert!(
                (0.30..0.46).contains(&count(JobStatus::Failed)),
                "{name} failed count {:.3}",
                count(JobStatus::Failed)
            );
            assert!(
                (0.03..0.12).contains(&count(JobStatus::Canceled)),
                "{name} canceled count {:.3}",
                count(JobStatus::Canceled)
            );
            assert!(
                time(JobStatus::Canceled) > 0.5,
                "{name} canceled resources {:.3}",
                time(JobStatus::Canceled)
            );
            assert!(
                (0.10..0.40).contains(&time(JobStatus::Completed)),
                "{name} completed resources {:.3}",
                time(JobStatus::Completed)
            );
            assert!(
                time(JobStatus::Failed) < 0.20,
                "{name} failed resources {:.3}",
                time(JobStatus::Failed)
            );
        }
    }

    #[test]
    fn arrivals_sorted_and_ids_sequential() {
        let w = kalos_trace();
        for pair in w.jobs.windows(2) {
            assert!(pair[1].submit >= pair[0].submit);
            assert_eq!(pair[1].id, pair[0].id + 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = SimRng::new(7);
        let mut r2 = SimRng::new(7);
        let a = WorkloadGenerator::kalos().generate(&mut r1, 10.0, 0);
        let b = WorkloadGenerator::kalos().generate(&mut r2, 10.0, 0);
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn stream_collect_equals_generate() {
        let g = WorkloadGenerator::seren();
        let mut r1 = SimRng::new(11);
        let mut r2 = SimRng::new(11);
        let closed = g.generate(&mut r1, 3.0, 50);
        let streamed: Vec<JobRecord> = g.stream(&mut r2, 3.0, 50).collect();
        assert_eq!(closed.jobs, streamed);
        // Parent RNG state advances identically (next draw agrees).
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn stream_is_lazy_and_fused() {
        let g = WorkloadGenerator::kalos();
        let mut rng = SimRng::new(5);
        let mut s = g.stream(&mut rng, 2.0, 0);
        assert_eq!(s.next_id(), 0);
        let first = s.next().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(s.next_id(), 1);
        assert!(s.current_time() >= first.submit);
        let rest: Vec<JobRecord> = s.by_ref().collect();
        assert!(!rest.is_empty());
        assert!(s.next().is_none(), "stays exhausted after the horizon");
        assert!(s.next().is_none());
    }

    #[test]
    fn mean_gpus_helper() {
        let g = WorkloadGenerator::kalos();
        let eval = g
            .profiles()
            .iter()
            .find(|p| p.job_type == JobType::Evaluation)
            .unwrap();
        assert!((eval.mean_gpus() - 1.8).abs() < 1e-9);
    }
}

/// A CPU-only job (§2.3: Seren carries 368K of them, Kalos 42K). The
/// paper's analysis "concentrates predominantly on GPU jobs", so these are
/// kept out of [`ClusterWorkload`] and generated separately — they matter
/// for the Table-2 job totals and for CPU-side metric jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuJobRecord {
    /// Unique id.
    pub id: u64,
    /// Which cluster.
    pub cluster: Cluster,
    /// Submission time.
    pub submit: SimTime,
    /// Runtime.
    pub duration: SimDuration,
    /// Logical CPUs requested.
    pub cpus: u32,
}

impl WorkloadGenerator {
    /// CPU jobs submitted per day at calibration scale.
    pub fn cpu_jobs_per_day(&self) -> f64 {
        match self.cluster {
            // 368K / 183 days and 42K / 183 days respectively.
            Cluster::Seren => 2_010.0,
            Cluster::Kalos => 230.0,
        }
    }

    /// Generate `days` of CPU-only jobs (data preprocessing, metric
    /// computation, tooling).
    pub fn generate_cpu(&self, rng: &mut SimRng, days: f64, first_id: u64) -> Vec<CpuJobRecord> {
        let horizon = SimDuration::from_secs_f64(days * 86_400.0);
        let interarrival = Exponential::with_mean(86_400.0 / self.cpu_jobs_per_day());
        let duration = LogNormal::from_median_mean(5.0, 45.0);
        let cpus = Categorical::new(&[0.45, 0.25, 0.2, 0.1]);
        const CPU_BUCKETS: [u32; 4] = [1, 4, 16, 64];
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let mut id = first_id;
        loop {
            t += SimDuration::from_secs_f64(interarrival.sample(rng));
            if t.saturating_since(SimTime::ZERO) > horizon {
                break;
            }
            out.push(CpuJobRecord {
                id,
                cluster: self.cluster,
                submit: t,
                duration: SimDuration::from_secs_f64((duration.sample(rng) * 60.0).max(1.0)),
                cpus: CPU_BUCKETS[cpus.sample_index(rng)],
            });
            id += 1;
        }
        out
    }
}

#[cfg(test)]
mod cpu_job_tests {
    use super::*;

    #[test]
    fn six_month_cpu_job_counts_match_section23() {
        let mut rng = SimRng::new(1);
        let seren = WorkloadGenerator::seren().generate_cpu(&mut rng, 183.0, 0);
        let kalos = WorkloadGenerator::kalos().generate_cpu(&mut rng, 183.0, 0);
        // §2.3: 368K and 42K CPU jobs.
        assert!(
            (330_000..410_000).contains(&seren.len()),
            "seren {}",
            seren.len()
        );
        assert!(
            (36_000..48_000).contains(&kalos.len()),
            "kalos {}",
            kalos.len()
        );
    }

    #[test]
    fn acme_total_job_count_matches_table2() {
        let mut rng = SimRng::new(2);
        let s = WorkloadGenerator::seren();
        let k = WorkloadGenerator::kalos();
        let total = s.generate(&mut rng, 183.0, 0).jobs.len()
            + s.generate_cpu(&mut rng, 183.0, 0).len()
            + k.generate(&mut rng, 183.0, 0).jobs.len()
            + k.generate_cpu(&mut rng, 183.0, 0).len();
        // Table 2: ~1.09M jobs across Acme.
        assert!((950_000..1_250_000).contains(&total), "total {total}");
    }

    #[test]
    fn cpu_jobs_are_modest_and_sorted() {
        let mut rng = SimRng::new(3);
        let jobs = WorkloadGenerator::kalos().generate_cpu(&mut rng, 30.0, 100);
        assert!(jobs.iter().all(|j| j.cpus <= 64 && j.cpus >= 1));
        for w in jobs.windows(2) {
            assert!(w[1].submit >= w[0].submit);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }
}
