//! Trace aggregation: the numbers behind Figures 3, 4, 5, 6 and 17.
//!
//! Two layers. [`StreamTraceStats`] is a bounded-memory accumulator —
//! fixed-size per-type/per-status/per-demand-bucket counters plus an
//! optional duration sketch — that jobs are `push`ed into one at a time
//! and shards `merge` together; it never retains a job. [`TraceStats`]
//! wraps a materialized slice (the closed-world figures need per-type
//! sample vectors for boxplots and CDFs) and delegates every aggregate
//! table to an internal `StreamTraceStats` built by pushing the slice in
//! job order — each accumulator then receives exactly the additions the
//! historical per-figure passes performed, in the same order, keeping the
//! floating-point output bit-identical.

use acme_telemetry::{BoxplotStats, Cdf, QuantileSketch};

use crate::job::{JobRecord, JobStatus, JobType};

/// Power-of-two GPU-demand thresholds 1..4096 (Figure 3's x-axis).
const DEMAND_K: usize = 13;

/// Bounded-memory aggregate statistics over a job stream (see module
/// docs). `push` jobs in, `merge` shards together, read the Figure 3/4/17
/// tables out — memory is O(1) in stream length (plus the optional
/// duration sketch).
#[derive(Debug, Clone)]
pub struct StreamTraceStats {
    jobs: usize,
    gpus_sum: f64,
    total_gpu_seconds: f64,
    type_counts: [usize; JobType::ALL.len()],
    type_gpu_secs: [f64; JobType::ALL.len()],
    status_counts: [usize; JobStatus::ALL.len()],
    status_gpu_secs: [f64; JobStatus::ALL.len()],
    demand_count_sums: [f64; DEMAND_K],
    demand_count_total: f64,
    demand_time_sums: [f64; DEMAND_K],
    demand_time_total: f64,
    duration_sketch: Option<QuantileSketch>,
}

impl Default for StreamTraceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamTraceStats {
    /// An empty accumulator with no duration sketch.
    pub fn new() -> Self {
        StreamTraceStats {
            jobs: 0,
            gpus_sum: 0.0,
            total_gpu_seconds: 0.0,
            type_counts: [0; JobType::ALL.len()],
            type_gpu_secs: [0.0; JobType::ALL.len()],
            status_counts: [0; JobStatus::ALL.len()],
            status_gpu_secs: [0.0; JobStatus::ALL.len()],
            demand_count_sums: [0.0; DEMAND_K],
            demand_count_total: 0.0,
            demand_time_sums: [0.0; DEMAND_K],
            demand_time_total: 0.0,
            duration_sketch: None,
        }
    }

    /// An empty accumulator that additionally sketches job durations
    /// (minutes) at per-level capacity `k`, for quantile reporting over
    /// streams too large to materialize.
    pub fn with_duration_sketch(k: usize) -> Self {
        let mut s = Self::new();
        s.duration_sketch = Some(QuantileSketch::with_capacity(k));
        s
    }

    /// Fold one job into every aggregate.
    pub fn push(&mut self, j: &JobRecord) {
        self.jobs += 1;
        self.gpus_sum += f64::from(j.gpus);
        let gs = j.gpu_seconds();
        self.total_gpu_seconds += gs;

        let ti = JobType::ALL
            .iter()
            .position(|&t| t == j.job_type)
            .expect("type outside JobType::ALL");
        self.type_counts[ti] += 1;
        self.type_gpu_secs[ti] += gs;

        let si = JobStatus::ALL
            .iter()
            .position(|&s| s == j.status)
            .expect("status outside JobStatus::ALL");
        self.status_counts[si] += 1;
        self.status_gpu_secs[si] += gs;

        // Smallest k with 2^k ≥ gpus (jobs over 4096 GPUs fall past the
        // last threshold and contribute only to the totals).
        let k = if j.gpus <= 1 {
            0
        } else {
            (32 - (j.gpus - 1).leading_zeros()) as usize
        };
        self.demand_count_total += 1.0;
        self.demand_time_total += gs;
        if k < DEMAND_K {
            for s in &mut self.demand_count_sums[k..] {
                *s += 1.0;
            }
            for s in &mut self.demand_time_sums[k..] {
                *s += gs;
            }
        }

        if let Some(sketch) = &mut self.duration_sketch {
            sketch.insert(j.duration.as_mins_f64());
        }
    }

    /// Release slack sketch capacity (see
    /// [`QuantileSketch::shrink_to_fit`]). No-op without a sketch.
    pub fn shrink_to_fit(&mut self) {
        if let Some(sketch) = &mut self.duration_sketch {
            sketch.shrink_to_fit();
        }
    }

    /// Combine another shard's aggregates into this one. Counters add;
    /// sketches merge. Deterministic for a fixed merge order (float sums
    /// reassociate across shard boundaries, so merged totals are equal to
    /// sequential pushes up to rounding, not bit-identical — the fleet
    /// experiment always merges in shard order).
    ///
    /// # Panics
    /// Panics when exactly one side carries a duration sketch.
    pub fn merge(&mut self, other: &StreamTraceStats) {
        self.jobs += other.jobs;
        self.gpus_sum += other.gpus_sum;
        self.total_gpu_seconds += other.total_gpu_seconds;
        for i in 0..JobType::ALL.len() {
            self.type_counts[i] += other.type_counts[i];
            self.type_gpu_secs[i] += other.type_gpu_secs[i];
        }
        for i in 0..JobStatus::ALL.len() {
            self.status_counts[i] += other.status_counts[i];
            self.status_gpu_secs[i] += other.status_gpu_secs[i];
        }
        for k in 0..DEMAND_K {
            self.demand_count_sums[k] += other.demand_count_sums[k];
            self.demand_time_sums[k] += other.demand_time_sums[k];
        }
        self.demand_count_total += other.demand_count_total;
        self.demand_time_total += other.demand_time_total;
        match (&mut self.duration_sketch, &other.duration_sketch) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("cannot merge stats with and without a duration sketch"),
        }
    }

    /// Number of jobs pushed.
    pub fn len(&self) -> usize {
        self.jobs
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.jobs == 0
    }

    /// Total GPU time in GPU-hours.
    pub fn total_gpu_hours(&self) -> f64 {
        self.total_gpu_seconds / 3600.0
    }

    /// Total GPU time in GPU-seconds.
    pub fn total_gpu_seconds(&self) -> f64 {
        self.total_gpu_seconds
    }

    /// Average requested GPUs per job.
    pub fn avg_gpus(&self) -> f64 {
        self.gpus_sum / self.jobs as f64
    }

    /// `(type, count_share, gpu_time_share)` rows — Figure 4. Types absent
    /// from the stream are omitted. Emitted in `JobType::ALL` order, which
    /// is the type's `Ord` order.
    pub fn type_shares(&self) -> Vec<(JobType, f64, f64)> {
        JobType::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.type_counts[i] > 0)
            .map(|(i, &ty)| {
                (
                    ty,
                    self.type_counts[i] as f64 / self.jobs as f64,
                    self.type_gpu_secs[i] / self.total_gpu_seconds,
                )
            })
            .collect()
    }

    /// `(status, count_share, gpu_time_share)` rows — Figure 17. All three
    /// statuses are always emitted.
    pub fn status_shares(&self) -> Vec<(JobStatus, f64, f64)> {
        JobStatus::ALL
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                (
                    s,
                    self.status_counts[i] as f64 / self.jobs as f64,
                    self.status_gpu_secs[i] / self.total_gpu_seconds,
                )
            })
            .collect()
    }

    /// Figure 3(a): cumulative fraction of *job count* at each
    /// power-of-two GPU demand.
    pub fn demand_count_cdf(&self) -> Vec<(u32, f64)> {
        (0..DEMAND_K)
            .map(|k| {
                (
                    1u32 << k,
                    self.demand_count_sums[k] / self.demand_count_total,
                )
            })
            .collect()
    }

    /// Figure 3(b): cumulative fraction of *GPU time* at each power-of-two
    /// GPU demand.
    pub fn demand_gpu_time_cdf(&self) -> Vec<(u32, f64)> {
        (0..DEMAND_K)
            .map(|k| (1u32 << k, self.demand_time_sums[k] / self.demand_time_total))
            .collect()
    }

    /// The duration sketch (minutes), when this accumulator carries one.
    pub fn duration_sketch(&self) -> Option<&QuantileSketch> {
        self.duration_sketch.as_ref()
    }
}

/// Aggregate statistics over a job trace.
#[derive(Debug)]
pub struct TraceStats<'a> {
    jobs: &'a [JobRecord],
    agg: StreamTraceStats,
}

impl<'a> TraceStats<'a> {
    /// Wrap a trace.
    ///
    /// # Panics
    /// Panics on an empty trace — every consumer needs at least one job.
    pub fn new(jobs: &'a [JobRecord]) -> Self {
        assert!(!jobs.is_empty(), "empty trace");
        let mut agg = StreamTraceStats::new();
        for j in jobs {
            agg.push(j);
        }
        TraceStats { jobs, agg }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Never true (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total GPU time in GPU-hours.
    pub fn total_gpu_hours(&self) -> f64 {
        self.agg.total_gpu_hours()
    }

    /// Average requested GPUs per job.
    pub fn avg_gpus(&self) -> f64 {
        self.agg.avg_gpus()
    }

    /// CDF of job runtimes in minutes (Figure 2a / 6a).
    pub fn duration_cdf(&self) -> Cdf {
        Cdf::from_samples(self.jobs.iter().map(|j| j.duration.as_mins_f64()).collect()).unwrap()
    }

    /// CDF of queue delays in minutes (Figure 6b) — meaningful after the
    /// scheduler simulation fills `queue_delay` in.
    pub fn queue_delay_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.jobs
                .iter()
                .map(|j| j.queue_delay.as_mins_f64())
                .collect(),
        )
        .unwrap()
    }

    /// Jobs of one type.
    pub fn of_type(&self, ty: JobType) -> Vec<&JobRecord> {
        self.jobs.iter().filter(|j| j.job_type == ty).collect()
    }

    /// `(type, count_share, gpu_time_share)` rows — Figure 4. Types absent
    /// from the trace are omitted. Each type's accumulator received
    /// exactly the additions the historical per-type map made, in job
    /// order, so shares are bit-identical to the materialized original.
    pub fn type_shares(&self) -> Vec<(JobType, f64, f64)> {
        self.agg.type_shares()
    }

    /// `(status, count_share, gpu_time_share)` rows — Figure 17.
    pub fn status_shares(&self) -> Vec<(JobStatus, f64, f64)> {
        self.agg.status_shares()
    }

    /// Per-type GPU-demand box plots — Figure 5.
    pub fn demand_boxplots(&self) -> Vec<(JobType, BoxplotStats)> {
        JobType::ALL
            .iter()
            .zip(self.partition_by_type(|j| j.gpus as f64))
            .filter_map(|(&ty, demands)| BoxplotStats::from_samples(demands).map(|b| (ty, b)))
            .collect()
    }

    /// One pass splitting `f(job)` into per-type sample vectors, ordered
    /// as `JobType::ALL`; job order within each type is trace order, the
    /// same order the per-type filter passes produced.
    fn partition_by_type(&self, f: impl Fn(&JobRecord) -> f64) -> Vec<Vec<f64>> {
        let mut per: Vec<Vec<f64>> = (0..JobType::ALL.len()).map(|_| Vec::new()).collect();
        for j in self.jobs {
            let i = JobType::ALL
                .iter()
                .position(|&t| t == j.job_type)
                .expect("type outside JobType::ALL");
            per[i].push(f(j));
        }
        per
    }

    /// Figure 3(a): cumulative fraction of *job count* for jobs requesting
    /// ≤ each power-of-two GPU demand. The streaming accumulator scattered
    /// each job's weight into every threshold ≥ its demand, in job order —
    /// exactly the additions the original 13 filtered passes performed,
    /// so results are bit-identical.
    pub fn demand_count_cdf(&self) -> Vec<(u32, f64)> {
        self.agg.demand_count_cdf()
    }

    /// Figure 3(b): cumulative fraction of *GPU time* for jobs requesting
    /// ≤ each power-of-two GPU demand.
    pub fn demand_gpu_time_cdf(&self) -> Vec<(u32, f64)> {
        self.agg.demand_gpu_time_cdf()
    }

    /// Per-type duration CDFs in minutes — Figure 6(a/c).
    pub fn duration_cdf_by_type(&self) -> Vec<(JobType, Cdf)> {
        self.per_type_cdf(|j| j.duration.as_mins_f64())
    }

    /// Per-type queue-delay CDFs in minutes — Figure 6(b/d).
    pub fn queue_delay_cdf_by_type(&self) -> Vec<(JobType, Cdf)> {
        self.per_type_cdf(|j| j.queue_delay.as_mins_f64())
    }

    fn per_type_cdf(&self, f: impl Fn(&JobRecord) -> f64) -> Vec<(JobType, Cdf)> {
        JobType::ALL
            .iter()
            .zip(self.partition_by_type(f))
            .filter_map(|(&ty, xs)| Cdf::from_samples(xs).map(|c| (ty, c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::job::Cluster;
    use acme_sim_core::{SimDuration, SimRng, SimTime};

    fn mk(id: u64, ty: JobType, gpus: u32, mins: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            id,
            cluster: Cluster::Kalos,
            job_type: ty,
            submit: SimTime::from_secs(id),
            queue_delay: SimDuration::from_mins(id % 5),
            duration: SimDuration::from_mins(mins),
            gpus,
            status,
        }
    }

    fn tiny_trace() -> Vec<JobRecord> {
        vec![
            mk(0, JobType::Evaluation, 1, 2, JobStatus::Completed),
            mk(1, JobType::Evaluation, 1, 4, JobStatus::Failed),
            mk(2, JobType::Pretrain, 512, 60, JobStatus::Canceled),
            mk(3, JobType::Debug, 8, 10, JobStatus::Completed),
        ]
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        TraceStats::new(&[]);
    }

    #[test]
    fn totals() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        assert_eq!(s.len(), 4);
        // 1*2 + 1*4 + 512*60 + 8*10 = 30806 GPU-min.
        assert!((s.total_gpu_hours() - 30806.0 / 60.0).abs() < 1e-9);
        assert_eq!(s.avg_gpus(), (1.0 + 1.0 + 512.0 + 8.0) / 4.0);
    }

    #[test]
    fn type_shares_sum_to_one() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let shares = s.type_shares();
        let count: f64 = shares.iter().map(|&(_, c, _)| c).sum();
        let time: f64 = shares.iter().map(|&(_, _, t)| t).sum();
        assert!((count - 1.0).abs() < 1e-12);
        assert!((time - 1.0).abs() < 1e-12);
        // Pretrain dominates GPU time here.
        let pre = shares
            .iter()
            .find(|&&(ty, _, _)| ty == JobType::Pretrain)
            .unwrap();
        assert!(pre.2 > 0.95);
    }

    #[test]
    fn status_shares_cover_all() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let shares = s.status_shares();
        assert_eq!(shares.len(), 3);
        let count: f64 = shares.iter().map(|&(_, c, _)| c).sum();
        assert!((count - 1.0).abs() < 1e-12);
        let canceled = shares
            .iter()
            .find(|&&(st, _, _)| st == JobStatus::Canceled)
            .unwrap();
        assert!(
            canceled.2 > 0.9,
            "the big canceled pretrain owns the GPU time"
        );
    }

    #[test]
    fn demand_cdfs_monotone_and_terminate_at_one() {
        let mut rng = SimRng::new(9);
        let w = WorkloadGenerator::kalos().generate(&mut rng, 30.0, 0);
        let s = TraceStats::new(&w.jobs);
        for cdf in [s.demand_count_cdf(), s.demand_gpu_time_cdf()] {
            for w in cdf.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12);
            }
            assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        // Figure 3's divergence: at ≤8 GPUs most of the *count* but almost
        // none of the *GPU time* is covered.
        let count_at_8 = s
            .demand_count_cdf()
            .iter()
            .find(|&&(g, _)| g == 8)
            .unwrap()
            .1;
        let time_at_8 = s
            .demand_gpu_time_cdf()
            .iter()
            .find(|&&(g, _)| g == 8)
            .unwrap()
            .1;
        assert!(count_at_8 > 0.9);
        assert!(time_at_8 < 0.05);
    }

    #[test]
    fn boxplots_reflect_demand_ordering() {
        let mut rng = SimRng::new(10);
        let w = WorkloadGenerator::kalos().generate(&mut rng, 30.0, 0);
        let s = TraceStats::new(&w.jobs);
        let boxes = s.demand_boxplots();
        let get = |ty: JobType| {
            boxes
                .iter()
                .find(|&&(t, _)| t == ty)
                .map(|&(_, b)| b)
                .unwrap()
        };
        // Figure 5: pretrain demands ≫ evaluation demands.
        assert!(get(JobType::Pretrain).median >= 256.0);
        assert!(get(JobType::Evaluation).median <= 4.0);
        // Debug spans a wide range.
        assert!(get(JobType::Debug).iqr() > 4.0);
    }

    #[test]
    fn per_type_cdfs_skip_absent_types() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let durs = s.duration_cdf_by_type();
        assert!(durs.iter().all(|(ty, _)| *ty != JobType::Sft));
        assert_eq!(durs.len(), 3);
        let delays = s.queue_delay_cdf_by_type();
        assert_eq!(delays.len(), 3);
    }

    #[test]
    fn duration_cdf_median() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let c = s.duration_cdf();
        assert!((c.median() - 7.0).abs() < 1e-9); // between 4 and 10
    }

    #[test]
    fn streaming_push_matches_trace_stats_bitwise() {
        let mut rng = SimRng::new(21);
        let w = WorkloadGenerator::seren().generate(&mut rng, 5.0, 0);
        let trace = TraceStats::new(&w.jobs);
        let mut stream = StreamTraceStats::new();
        for j in &w.jobs {
            stream.push(j);
        }
        assert_eq!(stream.len(), trace.len());
        assert_eq!(stream.avg_gpus().to_bits(), trace.avg_gpus().to_bits());
        assert_eq!(
            stream.total_gpu_hours().to_bits(),
            trace.total_gpu_hours().to_bits()
        );
        for (a, b) in stream.type_shares().iter().zip(trace.type_shares()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
            assert_eq!(a.2.to_bits(), b.2.to_bits());
        }
        for (a, b) in stream
            .demand_count_cdf()
            .iter()
            .zip(trace.demand_count_cdf())
        {
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn merged_shards_agree_with_sequential_stream() {
        let mut rng = SimRng::new(22);
        let w = WorkloadGenerator::kalos().generate(&mut rng, 20.0, 0);
        let mut seq = StreamTraceStats::with_duration_sketch(256);
        for j in &w.jobs {
            seq.push(j);
        }
        let mid = w.jobs.len() / 2;
        let mut left = StreamTraceStats::with_duration_sketch(256);
        let mut right = StreamTraceStats::with_duration_sketch(256);
        for j in &w.jobs[..mid] {
            left.push(j);
        }
        for j in &w.jobs[mid..] {
            right.push(j);
        }
        left.merge(&right);
        assert_eq!(left.len(), seq.len());
        // Integer counters are exact across the merge.
        for (a, b) in left.status_shares().iter().zip(seq.status_shares()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
        // Float sums reassociate across the shard boundary: equal up to
        // rounding, not bitwise.
        assert!((left.total_gpu_hours() - seq.total_gpu_hours()).abs() < 1e-6);
        // Sketch survives the merge with the full population.
        let sk = left.duration_sketch().unwrap();
        assert_eq!(sk.count(), w.jobs.len() as u64);
        assert_eq!(sk.min(), seq.duration_sketch().unwrap().min());
    }

    #[test]
    fn empty_stream_stats() {
        let s = StreamTraceStats::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.duration_sketch().is_none());
    }

    #[test]
    #[should_panic(expected = "with and without a duration sketch")]
    fn merge_rejects_sketch_mismatch() {
        let mut a = StreamTraceStats::new();
        a.merge(&StreamTraceStats::with_duration_sketch(64));
    }
}
