//! Trace aggregation: the numbers behind Figures 3, 4, 5, 6 and 17.

use std::collections::BTreeMap;

use acme_telemetry::{BoxplotStats, Cdf};

use crate::job::{JobRecord, JobStatus, JobType};

/// Aggregate statistics over a job trace.
#[derive(Debug)]
pub struct TraceStats<'a> {
    jobs: &'a [JobRecord],
    total_gpu_seconds: f64,
}

impl<'a> TraceStats<'a> {
    /// Wrap a trace.
    ///
    /// # Panics
    /// Panics on an empty trace — every consumer needs at least one job.
    pub fn new(jobs: &'a [JobRecord]) -> Self {
        assert!(!jobs.is_empty(), "empty trace");
        let total_gpu_seconds = jobs.iter().map(|j| j.gpu_seconds()).sum();
        TraceStats {
            jobs,
            total_gpu_seconds,
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Never true (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total GPU time in GPU-hours.
    pub fn total_gpu_hours(&self) -> f64 {
        self.total_gpu_seconds / 3600.0
    }

    /// Average requested GPUs per job.
    pub fn avg_gpus(&self) -> f64 {
        self.jobs.iter().map(|j| j.gpus as f64).sum::<f64>() / self.jobs.len() as f64
    }

    /// CDF of job runtimes in minutes (Figure 2a / 6a).
    pub fn duration_cdf(&self) -> Cdf {
        Cdf::from_samples(self.jobs.iter().map(|j| j.duration.as_mins_f64()).collect()).unwrap()
    }

    /// CDF of queue delays in minutes (Figure 6b) — meaningful after the
    /// scheduler simulation fills `queue_delay` in.
    pub fn queue_delay_cdf(&self) -> Cdf {
        Cdf::from_samples(
            self.jobs
                .iter()
                .map(|j| j.queue_delay.as_mins_f64())
                .collect(),
        )
        .unwrap()
    }

    /// Jobs of one type.
    pub fn of_type(&self, ty: JobType) -> Vec<&JobRecord> {
        self.jobs.iter().filter(|j| j.job_type == ty).collect()
    }

    /// `(type, count_share, gpu_time_share)` rows — Figure 4. Types absent
    /// from the trace are omitted.
    pub fn type_shares(&self) -> Vec<(JobType, f64, f64)> {
        let mut counts: BTreeMap<JobType, (usize, f64)> = BTreeMap::new();
        for j in self.jobs {
            let e = counts.entry(j.job_type).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += j.gpu_seconds();
        }
        counts
            .into_iter()
            .map(|(ty, (n, t))| {
                (
                    ty,
                    n as f64 / self.jobs.len() as f64,
                    t / self.total_gpu_seconds,
                )
            })
            .collect()
    }

    /// `(status, count_share, gpu_time_share)` rows — Figure 17.
    pub fn status_shares(&self) -> Vec<(JobStatus, f64, f64)> {
        // Single pass with one accumulator per status: each status's sum
        // receives exactly the additions the per-status filter pass made,
        // in the same job order, so the floating-point totals are
        // bit-identical to the multi-pass original.
        let mut counts = [0usize; JobStatus::ALL.len()];
        let mut times = [0.0f64; JobStatus::ALL.len()];
        for j in self.jobs {
            let i = JobStatus::ALL
                .iter()
                .position(|&s| s == j.status)
                .expect("status outside JobStatus::ALL");
            counts[i] += 1;
            times[i] += j.gpu_seconds();
        }
        JobStatus::ALL
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                (
                    s,
                    counts[i] as f64 / self.jobs.len() as f64,
                    times[i] / self.total_gpu_seconds,
                )
            })
            .collect()
    }

    /// Per-type GPU-demand box plots — Figure 5.
    pub fn demand_boxplots(&self) -> Vec<(JobType, BoxplotStats)> {
        JobType::ALL
            .iter()
            .zip(self.partition_by_type(|j| j.gpus as f64))
            .filter_map(|(&ty, demands)| BoxplotStats::from_samples(demands).map(|b| (ty, b)))
            .collect()
    }

    /// One pass splitting `f(job)` into per-type sample vectors, ordered
    /// as `JobType::ALL`; job order within each type is trace order, the
    /// same order the per-type filter passes produced.
    fn partition_by_type(&self, f: impl Fn(&JobRecord) -> f64) -> Vec<Vec<f64>> {
        let mut per: Vec<Vec<f64>> = (0..JobType::ALL.len()).map(|_| Vec::new()).collect();
        for j in self.jobs {
            let i = JobType::ALL
                .iter()
                .position(|&t| t == j.job_type)
                .expect("type outside JobType::ALL");
            per[i].push(f(j));
        }
        per
    }

    /// Figure 3(a): cumulative fraction of *job count* for jobs requesting
    /// ≤ each power-of-two GPU demand.
    pub fn demand_count_cdf(&self) -> Vec<(u32, f64)> {
        self.demand_cdf(|_| 1.0)
    }

    /// Figure 3(b): cumulative fraction of *GPU time* for jobs requesting
    /// ≤ each power-of-two GPU demand.
    pub fn demand_gpu_time_cdf(&self) -> Vec<(u32, f64)> {
        self.demand_cdf(|j| j.gpu_seconds())
    }

    fn demand_cdf(&self, weight: impl Fn(&JobRecord) -> f64) -> Vec<(u32, f64)> {
        // Thresholds are the powers of two 1..4096. One pass scatters each
        // job's weight into every threshold ≥ its demand, in job order —
        // each threshold therefore accumulates exactly the additions the
        // original 13 filtered passes performed, in the same order, and
        // the floating-point results are bit-identical.
        const K: usize = 13;
        let mut sums = [0.0f64; K];
        let mut total = 0.0f64;
        for j in self.jobs {
            let w = weight(j);
            total += w;
            // Smallest k with 2^k ≥ gpus (jobs over 4096 GPUs fall past
            // the last threshold and contribute only to the total).
            let k = if j.gpus <= 1 {
                0
            } else {
                (32 - (j.gpus - 1).leading_zeros()) as usize
            };
            if k < K {
                for s in &mut sums[k..] {
                    *s += w;
                }
            }
        }
        (0..K).map(|k| (1u32 << k, sums[k] / total)).collect()
    }

    /// Per-type duration CDFs in minutes — Figure 6(a/c).
    pub fn duration_cdf_by_type(&self) -> Vec<(JobType, Cdf)> {
        self.per_type_cdf(|j| j.duration.as_mins_f64())
    }

    /// Per-type queue-delay CDFs in minutes — Figure 6(b/d).
    pub fn queue_delay_cdf_by_type(&self) -> Vec<(JobType, Cdf)> {
        self.per_type_cdf(|j| j.queue_delay.as_mins_f64())
    }

    fn per_type_cdf(&self, f: impl Fn(&JobRecord) -> f64) -> Vec<(JobType, Cdf)> {
        JobType::ALL
            .iter()
            .zip(self.partition_by_type(f))
            .filter_map(|(&ty, xs)| Cdf::from_samples(xs).map(|c| (ty, c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::job::Cluster;
    use acme_sim_core::{SimDuration, SimRng, SimTime};

    fn mk(id: u64, ty: JobType, gpus: u32, mins: u64, status: JobStatus) -> JobRecord {
        JobRecord {
            id,
            cluster: Cluster::Kalos,
            job_type: ty,
            submit: SimTime::from_secs(id),
            queue_delay: SimDuration::from_mins(id % 5),
            duration: SimDuration::from_mins(mins),
            gpus,
            status,
        }
    }

    fn tiny_trace() -> Vec<JobRecord> {
        vec![
            mk(0, JobType::Evaluation, 1, 2, JobStatus::Completed),
            mk(1, JobType::Evaluation, 1, 4, JobStatus::Failed),
            mk(2, JobType::Pretrain, 512, 60, JobStatus::Canceled),
            mk(3, JobType::Debug, 8, 10, JobStatus::Completed),
        ]
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        TraceStats::new(&[]);
    }

    #[test]
    fn totals() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        assert_eq!(s.len(), 4);
        // 1*2 + 1*4 + 512*60 + 8*10 = 30806 GPU-min.
        assert!((s.total_gpu_hours() - 30806.0 / 60.0).abs() < 1e-9);
        assert_eq!(s.avg_gpus(), (1.0 + 1.0 + 512.0 + 8.0) / 4.0);
    }

    #[test]
    fn type_shares_sum_to_one() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let shares = s.type_shares();
        let count: f64 = shares.iter().map(|&(_, c, _)| c).sum();
        let time: f64 = shares.iter().map(|&(_, _, t)| t).sum();
        assert!((count - 1.0).abs() < 1e-12);
        assert!((time - 1.0).abs() < 1e-12);
        // Pretrain dominates GPU time here.
        let pre = shares
            .iter()
            .find(|&&(ty, _, _)| ty == JobType::Pretrain)
            .unwrap();
        assert!(pre.2 > 0.95);
    }

    #[test]
    fn status_shares_cover_all() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let shares = s.status_shares();
        assert_eq!(shares.len(), 3);
        let count: f64 = shares.iter().map(|&(_, c, _)| c).sum();
        assert!((count - 1.0).abs() < 1e-12);
        let canceled = shares
            .iter()
            .find(|&&(st, _, _)| st == JobStatus::Canceled)
            .unwrap();
        assert!(
            canceled.2 > 0.9,
            "the big canceled pretrain owns the GPU time"
        );
    }

    #[test]
    fn demand_cdfs_monotone_and_terminate_at_one() {
        let mut rng = SimRng::new(9);
        let w = WorkloadGenerator::kalos().generate(&mut rng, 30.0, 0);
        let s = TraceStats::new(&w.jobs);
        for cdf in [s.demand_count_cdf(), s.demand_gpu_time_cdf()] {
            for w in cdf.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12);
            }
            assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
        // Figure 3's divergence: at ≤8 GPUs most of the *count* but almost
        // none of the *GPU time* is covered.
        let count_at_8 = s
            .demand_count_cdf()
            .iter()
            .find(|&&(g, _)| g == 8)
            .unwrap()
            .1;
        let time_at_8 = s
            .demand_gpu_time_cdf()
            .iter()
            .find(|&&(g, _)| g == 8)
            .unwrap()
            .1;
        assert!(count_at_8 > 0.9);
        assert!(time_at_8 < 0.05);
    }

    #[test]
    fn boxplots_reflect_demand_ordering() {
        let mut rng = SimRng::new(10);
        let w = WorkloadGenerator::kalos().generate(&mut rng, 30.0, 0);
        let s = TraceStats::new(&w.jobs);
        let boxes = s.demand_boxplots();
        let get = |ty: JobType| {
            boxes
                .iter()
                .find(|&&(t, _)| t == ty)
                .map(|&(_, b)| b)
                .unwrap()
        };
        // Figure 5: pretrain demands ≫ evaluation demands.
        assert!(get(JobType::Pretrain).median >= 256.0);
        assert!(get(JobType::Evaluation).median <= 4.0);
        // Debug spans a wide range.
        assert!(get(JobType::Debug).iqr() > 4.0);
    }

    #[test]
    fn per_type_cdfs_skip_absent_types() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let durs = s.duration_cdf_by_type();
        assert!(durs.iter().all(|(ty, _)| *ty != JobType::Sft));
        assert_eq!(durs.len(), 3);
        let delays = s.queue_delay_cdf_by_type();
        assert_eq!(delays.len(), 3);
    }

    #[test]
    fn duration_cdf_median() {
        let jobs = tiny_trace();
        let s = TraceStats::new(&jobs);
        let c = s.duration_cdf();
        assert!((c.median() - 7.0).abs() < 1e-9); // between 4 and 10
    }
}
