//! Trace export/import in an AcmeTrace-style CSV schema.
//!
//! The paper releases its traces publicly; this module gives the synthetic
//! stand-in the same property. The schema mirrors the released job log:
//! one row per job with submission/queue/runtime, demand, type and final
//! status. Export and import round-trip exactly (microsecond-precision
//! times), so downstream users can persist a generated six-month trace and
//! reload it without touching the generator.

use acme_sim_core::{SimDuration, SimTime};

use crate::job::{Cluster, JobRecord, JobStatus, JobType};

/// The CSV header line.
pub const HEADER: &str = "job_id,cluster,job_type,submit_us,queue_delay_us,duration_us,gpus,status";

/// Errors from parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line is missing or wrong.
    BadHeader,
    /// A row has the wrong number of fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed header"),
            ParseError::BadFieldCount { line } => write!(f, "line {line}: wrong field count"),
            ParseError::BadField { line, column } => {
                write!(f, "line {line}: bad value in column `{column}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn type_tag(ty: JobType) -> &'static str {
    ty.label()
}

fn parse_type(s: &str) -> Option<JobType> {
    JobType::ALL.iter().copied().find(|t| t.label() == s)
}

fn status_tag(s: JobStatus) -> &'static str {
    s.label()
}

fn parse_status(s: &str) -> Option<JobStatus> {
    JobStatus::ALL.iter().copied().find(|t| t.label() == s)
}

fn cluster_tag(c: Cluster) -> &'static str {
    c.label()
}

fn parse_cluster(s: &str) -> Option<Cluster> {
    match s {
        "Seren" => Some(Cluster::Seren),
        "Kalos" => Some(Cluster::Kalos),
        _ => None,
    }
}

/// Stream a trace as CSV (header + one row per job) into a [`Write`]
/// sink, one row at a time. Memory is O(1) in trace length — this is the
/// export path for streamed fleet-scale traces, where [`to_csv`]'s full
/// output `String` would be the exact materialization the streaming
/// generator avoids. Bytes are identical to [`to_csv`].
///
/// [`Write`]: std::io::Write
pub fn write_csv<W, I, J>(sink: &mut W, jobs: I) -> std::io::Result<()>
where
    W: std::io::Write,
    I: IntoIterator<Item = J>,
    J: std::borrow::Borrow<JobRecord>,
{
    writeln!(sink, "{HEADER}")?;
    for j in jobs {
        let j = j.borrow();
        writeln!(
            sink,
            "{},{},{},{},{},{},{},{}",
            j.id,
            cluster_tag(j.cluster),
            type_tag(j.job_type),
            j.submit.as_micros(),
            j.queue_delay.as_micros(),
            j.duration.as_micros(),
            j.gpus,
            status_tag(j.status),
        )?;
    }
    Ok(())
}

/// Serialize a trace to CSV (header + one row per job). Collects
/// [`write_csv`] into a `String`; prefer `write_csv` when the trace is
/// large or already streaming.
pub fn to_csv(jobs: &[JobRecord]) -> String {
    let mut out = Vec::with_capacity(64 * (jobs.len() + 1));
    write_csv(&mut out, jobs).expect("writing CSV to a Vec cannot fail");
    String::from_utf8(out).expect("CSV output is ASCII")
}

/// Parse a CSV trace produced by [`to_csv`] (or hand-authored in the same
/// schema). Blank lines are ignored.
pub fn from_csv(text: &str) -> Result<Vec<JobRecord>, ParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(ParseError::BadHeader),
    }
    let mut jobs = Vec::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 8 {
            return Err(ParseError::BadFieldCount { line });
        }
        let field = |column: &'static str| ParseError::BadField { line, column };
        jobs.push(JobRecord {
            id: fields[0].parse().map_err(|_| field("job_id"))?,
            cluster: parse_cluster(fields[1]).ok_or_else(|| field("cluster"))?,
            job_type: parse_type(fields[2]).ok_or_else(|| field("job_type"))?,
            submit: SimTime::from_micros(fields[3].parse().map_err(|_| field("submit_us"))?),
            queue_delay: SimDuration::from_micros(
                fields[4].parse().map_err(|_| field("queue_delay_us"))?,
            ),
            duration: SimDuration::from_micros(
                fields[5].parse().map_err(|_| field("duration_us"))?,
            ),
            gpus: fields[6].parse().map_err(|_| field("gpus"))?,
            status: parse_status(fields[7]).ok_or_else(|| field("status"))?,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use acme_sim_core::SimRng;

    fn sample() -> Vec<JobRecord> {
        let mut rng = SimRng::new(1);
        WorkloadGenerator::kalos().generate(&mut rng, 5.0, 0).jobs
    }

    #[test]
    fn round_trips_exactly() {
        let jobs = sample();
        let csv = to_csv(&jobs);
        let back = from_csv(&csv).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn header_is_first_line() {
        let csv = to_csv(&sample());
        assert!(csv.starts_with(HEADER));
        assert_eq!(csv.lines().count(), sample().len() + 1);
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(
            from_csv("1,Kalos,evaluation,0,0,5,1,completed"),
            Err(ParseError::BadHeader)
        );
        assert_eq!(from_csv(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_malformed_rows() {
        let bad_count = format!("{HEADER}\n1,Kalos,evaluation,0,0,5,1\n");
        assert_eq!(
            from_csv(&bad_count),
            Err(ParseError::BadFieldCount { line: 2 })
        );
        let bad_type = format!("{HEADER}\n1,Kalos,unknown,0,0,5,1,completed\n");
        assert_eq!(
            from_csv(&bad_type),
            Err(ParseError::BadField {
                line: 2,
                column: "job_type"
            })
        );
        let bad_num = format!("{HEADER}\n1,Kalos,evaluation,x,0,5,1,completed\n");
        assert_eq!(
            from_csv(&bad_num),
            Err(ParseError::BadField {
                line: 2,
                column: "submit_us"
            })
        );
        let bad_cluster = format!("{HEADER}\n1,Philly,evaluation,0,0,5,1,completed\n");
        assert_eq!(
            from_csv(&bad_cluster),
            Err(ParseError::BadField {
                line: 2,
                column: "cluster"
            })
        );
    }

    #[test]
    fn write_csv_streams_the_same_bytes() {
        let jobs = sample();
        let eager = to_csv(&jobs);
        // Streamed through a Write sink from an iterator of owned records
        // (the fleet path: no materialized slice anywhere).
        let mut streamed = Vec::new();
        write_csv(&mut streamed, jobs.iter().cloned()).unwrap();
        assert_eq!(eager.as_bytes(), streamed.as_slice());
    }

    #[test]
    fn write_csv_propagates_sink_errors() {
        struct FailingSink;
        impl std::io::Write for FailingSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_csv(&mut FailingSink, sample().iter()).unwrap_err();
        assert_eq!(err.to_string(), "sink full");
    }

    #[test]
    fn blank_lines_ignored() {
        let jobs = sample();
        let mut csv = to_csv(&jobs);
        csv.push('\n');
        csv.push('\n');
        assert_eq!(from_csv(&csv).unwrap(), jobs);
    }

    #[test]
    fn errors_display_usefully() {
        let e = ParseError::BadField {
            line: 7,
            column: "gpus",
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("gpus"));
    }
}
