//! Open-system fleet workload: multi-tenant, multi-cluster job arrivals
//! as a sharded lazy stream.
//!
//! The closed-world generators model one cluster at calibration scale and
//! materialize the trace. This module models what the paper's §2.1
//! deployment actually serves — the *fleet*: both clusters side by side,
//! hundreds of tenants with Zipf-skewed activity, and diurnally bursty
//! arrivals — at job counts (10⁶–10⁷) where materializing is off the
//! table. Three design rules keep it deterministic and parallel:
//!
//! * **Sharding by arrival index, not time.** The stream is cut into
//!   fixed-size runs of consecutive arrivals ([`FleetConfig::shard_jobs`]
//!   apiece). Shard `i` seeds its own RNG as
//!   `SimRng::new(seed).fork(i + 1)` — a pure function of `(seed, i)` — so
//!   any worker can produce any shard independently and the work-stealing
//!   pool's schedule cannot leak into the output.
//! * **Thinned Poisson arrivals.** Candidates arrive at the peak rate
//!   `λ̄·(1 + amp)`; each is accepted with probability
//!   `rate(t)/λmax` where `rate(t) = λ̄·(1 + amp·sin(2πt/day))` — the
//!   standard acceptance–rejection construction of an inhomogeneous
//!   Poisson process, two RNG draws per candidate, no inverse integrals.
//! * **Per-job attribute draws reuse the closed-world samplers.** After
//!   tenant and cluster are chosen, type/demand/status/duration come from
//!   the exact [`ProfileSampler`] sequence `WorkloadGenerator::generate`
//!   uses, so fleet jobs are distributionally the same population the
//!   calibrated figures were validated against.
//!
//! Shard clocks start at `lo · mean_gap` (the expected submit time of
//! arrival `lo`), so shard boundaries introduce a seam in absolute time
//! but leave every aggregate this module reports — tenant shares,
//! hour-of-day burst profile, inter-arrival quantiles, per-type tables —
//! statistically untouched.

use acme_sim_core::dist::{Categorical, Distribution, Exponential, Zipf};
use acme_sim_core::{SimRng, SimTime};
use acme_telemetry::QuantileSketch;

use crate::generator::{ProfileSampler, WorkloadGenerator};
use crate::job::JobRecord;
use crate::stats::StreamTraceStats;

/// Configuration for a fleet-scale open-system run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Base RNG seed; shard `i` derives its stream from `(seed, i)`.
    pub seed: u64,
    /// Total jobs across the whole run.
    pub jobs: u64,
    /// Number of tenants sharing the fleet.
    pub tenants: usize,
    /// Zipf exponent for tenant activity skew.
    pub zipf_s: f64,
    /// Diurnal burst amplitude in `[0, 1)`: arrival rate swings between
    /// `λ̄·(1−amp)` and `λ̄·(1+amp)` over each simulated day.
    pub burst_amp: f64,
    /// Arrivals per shard; `0` picks a default that keeps shard count
    /// (and therefore merged-state memory) small at any scale.
    pub shard_jobs: u64,
}

impl FleetConfig {
    /// The default fleet: 10⁶ jobs, 512 tenants, `s = 1.1` skew, ±60%
    /// diurnal swing, auto shard size.
    pub fn new(seed: u64) -> Self {
        FleetConfig {
            seed,
            jobs: 1_000_000,
            tenants: 512,
            zipf_s: 1.1,
            burst_amp: 0.6,
            shard_jobs: 0,
        }
    }

    /// This config with a different total job count.
    pub fn with_jobs(mut self, jobs: u64) -> Self {
        self.jobs = jobs;
        self
    }

    /// Effective arrivals per shard (resolves the `0` default: at least
    /// 64 Ki arrivals so tiny shards never dominate, at most 64 shards so
    /// merged per-shard state stays O(1) in `jobs`).
    pub fn shard_jobs(&self) -> u64 {
        if self.shard_jobs > 0 {
            self.shard_jobs
        } else {
            (self.jobs / 64).max(65_536)
        }
    }

    /// Number of shards covering [`Self::jobs`].
    pub fn shard_count(&self) -> usize {
        if self.jobs == 0 {
            0
        } else {
            (self.jobs.div_ceil(self.shard_jobs())) as usize
        }
    }

    /// Global arrival-index range `[lo, hi)` of shard `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn shard_range(&self, i: usize) -> (u64, u64) {
        assert!(i < self.shard_count(), "shard {i} out of range");
        let lo = i as u64 * self.shard_jobs();
        (lo, (lo + self.shard_jobs()).min(self.jobs))
    }

    /// Mean arrival rate in jobs/day: both clusters' calibrated rates
    /// combined (§2.3: Seren 3630 + Kalos 110).
    pub fn jobs_per_day(&self) -> f64 {
        WorkloadGenerator::seren().jobs_per_day() + WorkloadGenerator::kalos().jobs_per_day()
    }

    /// Simulated days the whole run spans in expectation.
    pub fn expected_days(&self) -> f64 {
        self.jobs as f64 / self.jobs_per_day()
    }
}

/// One fleet arrival: a [`JobRecord`] plus the tenant that submitted it.
/// Tenants are identified by Zipf rank, so tenant `0` is the fleet's
/// heaviest user everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetJob {
    /// Submitting tenant (Zipf rank, 0 = most active).
    pub tenant: u32,
    /// The job itself; `id` is the global arrival index.
    pub job: JobRecord,
}

/// Per-cluster sampling state reused from the closed-world generators.
struct ClusterArm {
    generator: WorkloadGenerator,
    type_picker: Categorical,
    samplers: Vec<ProfileSampler>,
}

impl ClusterArm {
    fn new(generator: WorkloadGenerator) -> Self {
        let weights: Vec<f64> = generator
            .profiles()
            .iter()
            .map(|p| p.count_weight)
            .collect();
        ClusterArm {
            type_picker: Categorical::new(&weights),
            samplers: generator
                .profiles()
                .iter()
                .map(ProfileSampler::new)
                .collect(),
            generator,
        }
    }
}

/// The lazy arrival stream of one fleet shard: yields exactly
/// `hi − lo` [`FleetJob`]s, O(1) memory, pure function of
/// `(config, shard index)`.
pub struct FleetStream {
    rng: SimRng,
    candidate_gap: Exponential,
    burst_amp: f64,
    zipf: Zipf,
    cluster_picker: Categorical,
    arms: [ClusterArm; 2],
    t_secs: f64,
    next_id: u64,
    remaining: u64,
    candidates: u64,
}

impl FleetStream {
    /// The stream for shard `i` of `config`.
    ///
    /// # Panics
    /// Panics when `i` is out of range or `burst_amp` is outside `[0, 1)`.
    pub fn shard(config: &FleetConfig, i: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&config.burst_amp),
            "burst_amp must be in [0, 1), got {}",
            config.burst_amp
        );
        let (lo, hi) = config.shard_range(i);
        let seren = WorkloadGenerator::seren();
        let kalos = WorkloadGenerator::kalos();
        let combined_per_day = seren.jobs_per_day() + kalos.jobs_per_day();
        let peak_rate = combined_per_day * (1.0 + config.burst_amp) / 86_400.0;
        FleetStream {
            rng: SimRng::new(config.seed).fork(i as u64 + 1),
            candidate_gap: Exponential::with_mean(1.0 / peak_rate),
            burst_amp: config.burst_amp,
            zipf: Zipf::new(config.tenants, config.zipf_s),
            cluster_picker: Categorical::new(&[seren.jobs_per_day(), kalos.jobs_per_day()]),
            arms: [ClusterArm::new(seren), ClusterArm::new(kalos)],
            t_secs: lo as f64 * 86_400.0 / combined_per_day,
            next_id: lo,
            remaining: hi - lo,
            candidates: 0,
        }
    }

    /// Thinned-Poisson candidates drawn so far (accepted + rejected) —
    /// the acceptance ratio is `yielded / candidates`.
    pub fn candidates(&self) -> u64 {
        self.candidates
    }

    /// The arrival clock after the most recent yield, in seconds.
    pub fn current_secs(&self) -> f64 {
        self.t_secs
    }
}

impl Iterator for FleetStream {
    type Item = FleetJob;

    fn next(&mut self) -> Option<FleetJob> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Acceptance–rejection thinning: candidates at the peak rate,
        // accepted with rate(t)/λmax.
        loop {
            self.candidates += 1;
            self.t_secs += self.candidate_gap.sample(&mut self.rng);
            let phase = std::f64::consts::TAU * (self.t_secs / 86_400.0);
            let accept = (1.0 + self.burst_amp * phase.sin()) / (1.0 + self.burst_amp);
            if self.rng.f64() < accept {
                break;
            }
        }
        let tenant = self.zipf.sample_index(&mut self.rng) as u32;
        let arm = &self.arms[self.cluster_picker.sample_index(&mut self.rng)];
        let p = arm.type_picker.sample_index(&mut self.rng);
        let job = arm.samplers[p].sample(
            arm.generator.cluster(),
            self.next_id,
            SimTime::from_secs_f64(self.t_secs),
            &arm.generator.profiles()[p],
            &mut self.rng,
        );
        self.next_id += 1;
        Some(FleetJob { tenant, job })
    }
}

/// Bounded-memory aggregates of one fleet shard (mergeable across
/// shards): the full [`StreamTraceStats`] table set plus tenant-skew
/// counters, an hour-of-day arrival profile, an inter-arrival sketch, and
/// the thinning acceptance ratio.
#[derive(Debug, Clone)]
pub struct FleetShardStats {
    /// Per-type / per-status / per-demand aggregate tables, with a
    /// duration sketch.
    pub trace: StreamTraceStats,
    /// Jobs submitted per tenant rank.
    pub tenant_jobs: Vec<u64>,
    /// GPU-seconds consumed per tenant rank.
    pub tenant_gpu_secs: Vec<f64>,
    /// Accepted arrivals per hour of day (0–23).
    pub hourly_arrivals: [u64; 24],
    /// Sketch of inter-arrival gaps between consecutive accepted jobs in
    /// this shard, seconds.
    pub gap_sketch: QuantileSketch,
    /// Thinned-Poisson candidates drawn (accepted + rejected).
    pub candidates: u64,
    last_submit_secs: Option<f64>,
}

/// Sketch capacity for per-shard duration/gap sketches: 64 shards × two
/// sketches × k=1024 stays a few MiB merged.
const FLEET_SKETCH_K: usize = 1024;

impl FleetShardStats {
    /// Empty aggregates for a fleet with `tenants` tenants.
    pub fn new(tenants: usize) -> Self {
        FleetShardStats {
            trace: StreamTraceStats::with_duration_sketch(FLEET_SKETCH_K),
            tenant_jobs: vec![0; tenants],
            tenant_gpu_secs: vec![0.0; tenants],
            hourly_arrivals: [0; 24],
            gap_sketch: QuantileSketch::with_capacity(FLEET_SKETCH_K),
            candidates: 0,
            last_submit_secs: None,
        }
    }

    /// Fold one arrival into every aggregate.
    pub fn push(&mut self, fj: &FleetJob) {
        self.trace.push(&fj.job);
        let tenant = fj.tenant as usize;
        self.tenant_jobs[tenant] += 1;
        self.tenant_gpu_secs[tenant] += fj.job.gpu_seconds();
        let submit_secs = fj.job.submit.as_secs_f64();
        let hour = ((submit_secs / 3600.0) as u64 % 24) as usize;
        self.hourly_arrivals[hour] += 1;
        if let Some(prev) = self.last_submit_secs {
            self.gap_sketch.insert(submit_secs - prev);
        }
        self.last_submit_secs = Some(submit_secs);
    }

    /// Run shard `i` of `config` to completion and return its aggregates.
    /// This is the unit of work the experiment hands to the shard pool.
    pub fn collect(config: &FleetConfig, i: usize) -> Self {
        let mut stream = FleetStream::shard(config, i);
        let mut stats = FleetShardStats::new(config.tenants);
        for fj in &mut stream {
            stats.push(&fj);
        }
        stats.candidates = stream.candidates();
        // This result will sit in the shard pool's buffer until every
        // shard lands; drop the sketches' slack capacity so 64 buffered
        // shards cost retained items, not high-water marks.
        stats.trace.shrink_to_fit();
        stats.gap_sketch.shrink_to_fit();
        stats
    }

    /// Merge another shard's aggregates (shard-order merges keep the
    /// result deterministic).
    ///
    /// # Panics
    /// Panics on tenant-count mismatch.
    pub fn merge(&mut self, other: &FleetShardStats) {
        assert_eq!(
            self.tenant_jobs.len(),
            other.tenant_jobs.len(),
            "tenant count mismatch"
        );
        self.trace.merge(&other.trace);
        for (a, b) in self.tenant_jobs.iter_mut().zip(&other.tenant_jobs) {
            *a += b;
        }
        for (a, b) in self.tenant_gpu_secs.iter_mut().zip(&other.tenant_gpu_secs) {
            *a += b;
        }
        for (a, b) in self.hourly_arrivals.iter_mut().zip(&other.hourly_arrivals) {
            *a += b;
        }
        self.gap_sketch.merge(&other.gap_sketch);
        self.candidates += other.candidates;
        self.last_submit_secs = None;
    }

    /// Fraction of all jobs submitted by the `n` most active tenant ranks.
    pub fn top_tenant_job_share(&self, n: usize) -> f64 {
        let top: u64 = self.tenant_jobs.iter().take(n).sum();
        top as f64 / self.trace.len() as f64
    }

    /// Fraction of all GPU time consumed by the `n` most active tenant
    /// ranks.
    pub fn top_tenant_time_share(&self, n: usize) -> f64 {
        let top: f64 = self.tenant_gpu_secs.iter().take(n).sum();
        top / self.trace.total_gpu_seconds()
    }

    /// Number of tenant ranks that submitted at least one job.
    pub fn active_tenants(&self) -> usize {
        self.tenant_jobs.iter().filter(|&&n| n > 0).count()
    }

    /// Peak-hour arrivals over mean-hour arrivals — the burstiness the
    /// diurnal modulation induces (1.0 = flat).
    pub fn burst_ratio(&self) -> f64 {
        let peak = *self.hourly_arrivals.iter().max().expect("24 buckets") as f64;
        let mean = self.hourly_arrivals.iter().sum::<u64>() as f64 / 24.0;
        peak / mean
    }

    /// Accepted arrivals / thinned-Poisson candidates.
    pub fn acceptance_ratio(&self) -> f64 {
        self.trace.len() as f64 / self.candidates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        FleetConfig {
            jobs: 30_000,
            shard_jobs: 10_000,
            ..FleetConfig::new(42)
        }
    }

    #[test]
    fn shard_ranges_tile_the_run() {
        let c = small();
        assert_eq!(c.shard_count(), 3);
        let mut expect = 0;
        for i in 0..c.shard_count() {
            let (lo, hi) = c.shard_range(i);
            assert_eq!(lo, expect);
            assert!(hi > lo);
            expect = hi;
        }
        assert_eq!(expect, c.jobs);
        // The auto shard size caps shard count at 64 regardless of scale.
        let big = FleetConfig::new(1).with_jobs(50_000_000);
        assert!(big.shard_count() <= 64);
        assert_eq!(FleetConfig::new(1).with_jobs(0).shard_count(), 0);
    }

    #[test]
    fn shards_yield_exact_counts_with_global_ids() {
        let c = small();
        let mut next_id = 0u64;
        for i in 0..c.shard_count() {
            let (lo, hi) = c.shard_range(i);
            let jobs: Vec<FleetJob> = FleetStream::shard(&c, i).collect();
            assert_eq!(jobs.len(), (hi - lo) as usize);
            for (k, fj) in jobs.iter().enumerate() {
                assert_eq!(fj.job.id, lo + k as u64, "global arrival index");
                assert!((fj.tenant as usize) < c.tenants);
            }
            assert_eq!(jobs[0].job.id, next_id);
            next_id = hi;
        }
    }

    #[test]
    fn arrivals_are_increasing_within_a_shard() {
        let c = small();
        let jobs: Vec<FleetJob> = FleetStream::shard(&c, 1).collect();
        for pair in jobs.windows(2) {
            assert!(pair[1].job.submit > pair[0].job.submit);
        }
        // Shard 1's clock starts at its expected offset, not zero.
        assert!(jobs[0].job.submit.as_secs_f64() > 86_400.0);
    }

    #[test]
    fn shards_are_pure_functions_of_seed_and_index() {
        let c = small();
        let a: Vec<FleetJob> = FleetStream::shard(&c, 2).collect();
        let b: Vec<FleetJob> = FleetStream::shard(&c, 2).collect();
        assert_eq!(a, b);
        let other_seed: Vec<FleetJob> =
            FleetStream::shard(&FleetConfig { seed: 7, ..small() }, 2).collect();
        assert_ne!(a, other_seed);
    }

    #[test]
    fn tenant_skew_is_zipf_like() {
        let c = small();
        let stats = FleetShardStats::collect(&c, 0);
        // Rank 0 is the heaviest tenant, and the head dominates.
        let top = stats.tenant_jobs[0];
        assert!(stats.tenant_jobs.iter().all(|&n| n <= top));
        assert!(stats.top_tenant_job_share(10) > 0.2);
        assert!(stats.top_tenant_job_share(c.tenants) > 0.999);
        assert!(stats.active_tenants() > c.tenants / 2);
    }

    #[test]
    fn diurnal_bursts_show_up_and_flatten_without_amplitude() {
        let c = small();
        let bursty = FleetShardStats::collect(&c, 0);
        assert!(bursty.burst_ratio() > 1.2, "ratio {}", bursty.burst_ratio());
        // Thinning accepts ~1/(1+amp) of candidates on average (biased a
        // little high here: the shard spans 2.7 days, so the sinusoid's
        // leading positive half-day is over-represented).
        let expected = 1.0 / (1.0 + c.burst_amp);
        assert!((bursty.acceptance_ratio() - expected).abs() < 0.08);

        // Flat control over a whole number of expected days, so hour
        // buckets see equal coverage and only Poisson noise remains.
        let flat_cfg = FleetConfig {
            burst_amp: 0.0,
            jobs: 4 * 3_740,
            shard_jobs: 4 * 3_740,
            ..FleetConfig::new(42)
        };
        let flat = FleetShardStats::collect(&flat_cfg, 0);
        assert!(flat.burst_ratio() < 1.15, "ratio {}", flat.burst_ratio());
        assert!(flat.burst_ratio() < bursty.burst_ratio());
        assert!((flat.acceptance_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_shards_cover_the_whole_run() {
        let c = small();
        let mut merged = FleetShardStats::new(c.tenants);
        for i in 0..c.shard_count() {
            merged.merge(&FleetShardStats::collect(&c, i));
        }
        assert_eq!(merged.trace.len() as u64, c.jobs);
        assert_eq!(merged.hourly_arrivals.iter().sum::<u64>(), c.jobs);
        assert_eq!(merged.trace.duration_sketch().unwrap().count(), c.jobs);
        // Gap sketch misses the (unobservable) cross-shard seams only.
        assert_eq!(merged.gap_sketch.count(), c.jobs - c.shard_count() as u64);
        // Population mix matches the cluster weights: Seren ≈ 97% of jobs.
        let seren_share = merged
            .trace
            .type_shares()
            .iter()
            .map(|&(_, count, _)| count)
            .sum::<f64>();
        assert!((seren_share - 1.0).abs() < 1e-9, "shares sum to 1");
        assert!(merged.acceptance_ratio() > 0.5);
    }

    #[test]
    fn mean_gap_matches_the_calibrated_rate() {
        let c = FleetConfig {
            jobs: 50_000,
            shard_jobs: 50_000,
            ..FleetConfig::new(3)
        };
        let stats = FleetShardStats::collect(&c, 0);
        let mean_gap = stats.gap_sketch.mean();
        let expected = 86_400.0 / c.jobs_per_day();
        assert!(
            (mean_gap - expected).abs() / expected < 0.05,
            "mean gap {mean_gap:.2}s vs expected {expected:.2}s"
        );
    }

    #[test]
    #[should_panic(expected = "burst_amp")]
    fn rejects_unit_amplitude() {
        let c = FleetConfig {
            burst_amp: 1.0,
            ..FleetConfig::new(1)
        };
        FleetStream::shard(&c, 0);
    }
}
