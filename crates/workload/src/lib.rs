//! LLM development workloads: the synthetic stand-in for the released
//! AcmeTrace dataset.
//!
//! The paper's §3 characterization is entirely distributional — CDFs of
//! duration and demand, per-type shares of job count and GPU time, status
//! breakdowns. This crate generates six-month job populations whose
//! distributions are *calibrated to the published aggregates*:
//!
//! * [`job`] — the job record vocabulary (types, statuses, demand,
//!   duration);
//! * [`generator`] — the Seren/Kalos generators (Figures 3–6, 17);
//! * [`datacenters`] — Philly/Helios/PAI-shaped reference generators for the
//!   cross-datacenter comparisons (Table 2, Figure 2);
//! * [`stats`] — the aggregation used to regenerate every §3 figure,
//!   including the bounded-memory [`stats::StreamTraceStats`];
//! * [`stream`] — the open-system fleet: sharded multi-tenant Zipf/Poisson
//!   arrival streams for 10⁶⁺-job runs.

#![warn(missing_docs)]

pub mod datacenters;
pub mod generator;
pub mod job;
pub mod stats;
pub mod stream;
pub mod trace_io;

pub use generator::{ClusterWorkload, StreamingGenerator, WorkloadGenerator};
pub use job::{JobRecord, JobStatus, JobType};
pub use stats::{StreamTraceStats, TraceStats};
pub use stream::{FleetConfig, FleetJob, FleetShardStats, FleetStream};
