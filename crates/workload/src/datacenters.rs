//! Reference datacenters for the cross-datacenter comparisons.
//!
//! Table 2 and Figure 2 compare Acme against three prior traces — Microsoft
//! Philly (2017), SenseTime Helios (2020), Alibaba PAI (2020). Those traces
//! are external data we don't ship, so this module provides *shape-faithful*
//! generators calibrated to the aggregates the paper quotes:
//!
//! * average requested GPUs: Philly 1.9, Helios 3.7, PAI 0.7 (PAI allows
//!   fractional GPUs), Acme 6.3;
//! * median GPU-job durations such that Acme's 2-minute median is 1.7–7.2×
//!   shorter, and Philly's *average* is 2.7–3.8× Helios/PAI and 12.8× Acme;
//! * GPU-utilization CDFs: Acme polarized at 0/100 with medians 97/99,
//!   Philly broad with median 48, PAI low with median 4 (Helios unavailable).

use acme_sim_core::dist::{Categorical, Distribution, LogNormal};
use acme_sim_core::SimRng;

/// Static Table-2 facts for one datacenter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatacenterInfo {
    /// Trace name.
    pub name: &'static str,
    /// Collection year.
    pub year: u32,
    /// Trace duration, months.
    pub duration_months: u32,
    /// Total jobs in the trace (CPU + GPU).
    pub total_jobs: f64,
    /// Average requested GPUs per GPU job.
    pub avg_gpus: f64,
    /// Total GPUs in the datacenter.
    pub total_gpus: u32,
    /// GPU models fielded.
    pub gpu_models: &'static str,
}

/// The Table-2 rows.
pub fn table2() -> [DatacenterInfo; 4] {
    [
        DatacenterInfo {
            name: "Philly",
            year: 2017,
            duration_months: 3,
            total_jobs: 113_000.0,
            avg_gpus: 1.9,
            total_gpus: 2_490,
            gpu_models: "12GB/24GB",
        },
        DatacenterInfo {
            name: "Helios",
            year: 2020,
            duration_months: 6,
            total_jobs: 3_360_000.0,
            avg_gpus: 3.7,
            total_gpus: 6_416,
            gpu_models: "1080Ti/V100",
        },
        DatacenterInfo {
            name: "PAI",
            year: 2020,
            duration_months: 2,
            total_jobs: 1_260_000.0,
            avg_gpus: 0.7,
            total_gpus: 6_742,
            gpu_models: "T4/P100/V100",
        },
        DatacenterInfo {
            name: "Acme",
            year: 2023,
            duration_months: 6,
            total_jobs: 1_090_000.0,
            avg_gpus: 6.3,
            total_gpus: 4_704,
            gpu_models: "A100",
        },
    ]
}

/// A lightweight reference job: duration, (possibly fractional) GPU demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefJob {
    /// Runtime, minutes.
    pub duration_mins: f64,
    /// Requested GPUs (PAI supports < 1).
    pub gpus: f64,
}

/// Shape-faithful generator for one reference datacenter.
#[derive(Debug, Clone)]
pub struct RefDatacenter {
    /// Trace name.
    pub name: &'static str,
    duration: LogNormal,
    demand_buckets: Vec<(f64, f64)>,
    util_mixture: Vec<(f64, f64, f64)>, // (weight, lo, hi) of uniform pieces
}

impl RefDatacenter {
    /// Microsoft Philly (2017): long jobs, broad utilization.
    pub fn philly() -> Self {
        RefDatacenter {
            name: "Philly",
            duration: LogNormal::from_median_mean(14.4, 448.0),
            demand_buckets: vec![
                (1.0, 0.75),
                (2.0, 0.10),
                (4.0, 0.08),
                (8.0, 0.05),
                (16.0, 0.02),
            ],
            util_mixture: vec![(0.25, 0.0, 10.0), (0.45, 10.0, 80.0), (0.30, 80.0, 100.0)],
        }
    }

    /// SenseTime Helios (2020). Utilization data is unavailable in the
    /// paper's Figure 2(b), mirrored here by an empty mixture.
    pub fn helios() -> Self {
        RefDatacenter {
            name: "Helios",
            duration: LogNormal::from_median_mean(6.0, 166.0),
            demand_buckets: vec![
                (1.0, 0.60),
                (2.0, 0.10),
                (4.0, 0.10),
                (8.0, 0.15),
                (16.0, 0.03),
                (32.0, 0.02),
            ],
            util_mixture: vec![],
        }
    }

    /// Alibaba PAI (2020): fractional GPU sharing, very low utilization.
    pub fn pai() -> Self {
        RefDatacenter {
            name: "PAI",
            duration: LogNormal::from_median_mean(3.4, 118.0),
            demand_buckets: vec![
                (0.25, 0.35),
                (0.5, 0.35),
                (1.0, 0.22),
                (2.0, 0.04),
                (4.0, 0.03),
                (8.0, 0.01),
            ],
            util_mixture: vec![(0.55, 0.0, 5.0), (0.25, 5.0, 25.0), (0.20, 25.0, 100.0)],
        }
    }

    /// An Acme-shaped reference (used only for Figure 2's overlay; the full
    /// Acme generators live in [`crate::generator`]).
    pub fn acme_cluster(name: &'static str, median_util: f64) -> Self {
        // Polarized utilization: a slice of idle GPUs, a thin middle, and a
        // dominant near-100% mode whose width sets the median.
        let top_lo = median_util - 2.0;
        RefDatacenter {
            name,
            duration: LogNormal::from_median_mean(2.0, 35.0),
            demand_buckets: vec![
                (1.0, 0.70),
                (2.0, 0.12),
                (4.0, 0.08),
                (8.0, 0.06),
                (64.0, 0.04),
            ],
            util_mixture: vec![(0.15, 0.0, 5.0), (0.13, 5.0, 90.0), (0.72, top_lo, 100.0)],
        }
    }

    /// Sample `n` jobs.
    pub fn sample_jobs(&self, rng: &mut SimRng, n: usize) -> Vec<RefJob> {
        let demand = Categorical::new(
            &self
                .demand_buckets
                .iter()
                .map(|&(_, w)| w)
                .collect::<Vec<_>>(),
        );
        (0..n)
            .map(|_| RefJob {
                duration_mins: self.duration.sample(rng),
                gpus: self.demand_buckets[demand.sample_index(rng)].0,
            })
            .collect()
    }

    /// Sample `n` GPU-utilization readings (percent). Empty when the source
    /// trace had no utilization data (Helios).
    pub fn sample_utilization(&self, rng: &mut SimRng, n: usize) -> Vec<f64> {
        if self.util_mixture.is_empty() {
            return vec![];
        }
        let pick = Categorical::new(
            &self
                .util_mixture
                .iter()
                .map(|&(w, _, _)| w)
                .collect::<Vec<_>>(),
        );
        (0..n)
            .map(|_| {
                let (_, lo, hi) = self.util_mixture[pick.sample_index(rng)];
                rng.range_f64(lo, hi).clamp(0.0, 100.0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    }

    #[test]
    fn table2_matches_paper() {
        let rows = table2();
        assert_eq!(rows[0].total_gpus, 2490);
        assert_eq!(rows[3].name, "Acme");
        assert_eq!(rows[3].total_gpus, 4704);
        assert_eq!(rows[2].avg_gpus, 0.7);
        assert_eq!(rows[1].total_jobs, 3_360_000.0);
    }

    #[test]
    fn avg_gpus_match_table2() {
        let mut rng = SimRng::new(1);
        for (dc, target) in [
            (RefDatacenter::philly(), 1.9),
            (RefDatacenter::helios(), 3.7),
            (RefDatacenter::pai(), 0.7),
        ] {
            let jobs = dc.sample_jobs(&mut rng, 100_000);
            let avg = jobs.iter().map(|j| j.gpus).sum::<f64>() / jobs.len() as f64;
            assert!(
                (avg - target).abs() / target < 0.15,
                "{}: avg {avg:.2} vs {target}",
                dc.name
            );
        }
    }

    #[test]
    fn duration_ordering_matches_fig2a() {
        let mut rng = SimRng::new(2);
        let mut med = |dc: &RefDatacenter| {
            median(
                dc.sample_jobs(&mut rng, 50_000)
                    .iter()
                    .map(|j| j.duration_mins)
                    .collect(),
            )
        };
        let acme = med(&RefDatacenter::acme_cluster("Seren", 97.0));
        let philly = med(&RefDatacenter::philly());
        let helios = med(&RefDatacenter::helios());
        let pai = med(&RefDatacenter::pai());
        // Acme's median is the shortest; others are 1.7–7.2× longer.
        for (name, other) in [("philly", philly), ("helios", helios), ("pai", pai)] {
            let ratio = other / acme;
            assert!((1.4..9.0).contains(&ratio), "{name}: ratio {ratio:.2}");
        }
        // The more recent traces have shorter durations.
        assert!(philly > helios && helios > pai && pai > acme);
    }

    #[test]
    fn average_duration_ratios_match_fig2a() {
        let mut rng = SimRng::new(3);
        let mut avg = |dc: &RefDatacenter| {
            let jobs = dc.sample_jobs(&mut rng, 200_000);
            jobs.iter().map(|j| j.duration_mins).sum::<f64>() / jobs.len() as f64
        };
        let philly = avg(&RefDatacenter::philly());
        let helios = avg(&RefDatacenter::helios());
        let pai = avg(&RefDatacenter::pai());
        let acme = avg(&RefDatacenter::acme_cluster("Seren", 97.0));
        // Philly's average is 2.7–3.8× Helios/PAI and ~12.8× Acme's.
        assert!(
            (2.0..5.0).contains(&(philly / helios)),
            "{:.2}",
            philly / helios
        );
        assert!((2.5..5.5).contains(&(philly / pai)), "{:.2}", philly / pai);
        assert!(
            (9.0..17.0).contains(&(philly / acme)),
            "{:.2}",
            philly / acme
        );
    }

    #[test]
    fn utilization_medians_match_fig2b() {
        let mut rng = SimRng::new(4);
        let mut med = |dc: &RefDatacenter| median(dc.sample_utilization(&mut rng, 100_000));
        let seren = med(&RefDatacenter::acme_cluster("Seren", 97.0));
        let kalos = med(&RefDatacenter::acme_cluster("Kalos", 99.0));
        let philly = med(&RefDatacenter::philly());
        let pai = med(&RefDatacenter::pai());
        assert!((94.0..100.0).contains(&seren), "seren {seren:.1}");
        assert!((96.0..100.0).contains(&kalos), "kalos {kalos:.1}");
        assert!((40.0..56.0).contains(&philly), "philly {philly:.1}");
        assert!((2.0..8.0).contains(&pai), "pai {pai:.1}");
        // Helios has no utilization data.
        assert!(RefDatacenter::helios()
            .sample_utilization(&mut rng, 10)
            .is_empty());
    }

    #[test]
    fn acme_utilization_is_polarized() {
        let mut rng = SimRng::new(5);
        let u = RefDatacenter::acme_cluster("Kalos", 99.0).sample_utilization(&mut rng, 50_000);
        let low = u.iter().filter(|&&x| x < 5.0).count() as f64 / u.len() as f64;
        let high = u.iter().filter(|&&x| x > 95.0).count() as f64 / u.len() as f64;
        assert!(low > 0.10, "low mass {low:.2}");
        assert!(high > 0.60, "high mass {high:.2}");
        // The middle is thin.
        assert!(1.0 - low - high < 0.25);
    }

    #[test]
    fn pai_supports_fractional_gpus() {
        let mut rng = SimRng::new(6);
        let jobs = RefDatacenter::pai().sample_jobs(&mut rng, 10_000);
        assert!(jobs.iter().any(|j| j.gpus < 1.0));
    }
}
