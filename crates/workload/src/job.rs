//! The job-record vocabulary shared by every crate.

use acme_sim_core::{SimDuration, SimTime};

/// The workload categories of §3.2 / Figure 4. `Sft` and `Mllm` appear only
/// in Seren.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JobType {
    /// Large-scale self-supervised pretraining.
    Pretrain,
    /// Supervised fine-tuning for alignment (Seren only).
    Sft,
    /// Multimodal-LLM jobs with their own mini pipeline (Seren only).
    Mllm,
    /// Benchmark evaluation of checkpoints.
    Evaluation,
    /// Debugging / testing runs.
    Debug,
    /// Unclassified jobs.
    Other,
}

impl JobType {
    /// All types, in the order Figure 4 lists them.
    pub const ALL: [JobType; 6] = [
        JobType::Pretrain,
        JobType::Sft,
        JobType::Mllm,
        JobType::Evaluation,
        JobType::Debug,
        JobType::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            JobType::Pretrain => "pretrain",
            JobType::Sft => "sft",
            JobType::Mllm => "mllm",
            JobType::Evaluation => "evaluation",
            JobType::Debug => "debug",
            JobType::Other => "other",
        }
    }
}

/// Final status of a job (Figure 17 / Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Ran to completion.
    Completed,
    /// Terminated by an error.
    Failed,
    /// Canceled by the user (parameter adjustment, stalled job, early
    /// satisfaction — Appendix A.1).
    Canceled,
}

impl JobStatus {
    /// All statuses.
    pub const ALL: [JobStatus; 3] = [JobStatus::Completed, JobStatus::Failed, JobStatus::Canceled];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Canceled => "canceled",
        }
    }
}

/// Identifies which cluster a job ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cluster {
    /// The Slurm cluster (286 × 8 A100).
    Seren,
    /// The Kubernetes cluster (302 × 8 A100).
    Kalos,
}

impl Cluster {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Cluster::Seren => "Seren",
            Cluster::Kalos => "Kalos",
        }
    }
}

/// One GPU job, as it would appear in the scheduler database (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Unique id within the trace.
    pub id: u64,
    /// Which cluster the job ran in.
    pub cluster: Cluster,
    /// Workload category.
    pub job_type: JobType,
    /// Submission time.
    pub submit: SimTime,
    /// Time spent waiting in queue (filled in by the scheduler simulation;
    /// zero for generator-only traces).
    pub queue_delay: SimDuration,
    /// Runtime once started (excludes queueing).
    pub duration: SimDuration,
    /// GPUs requested.
    pub gpus: u32,
    /// Final status.
    pub status: JobStatus,
}

impl JobRecord {
    /// GPU time: requested GPUs × runtime (the Figure 3(b) / Figure 4
    /// resource metric), in GPU-seconds.
    pub fn gpu_seconds(&self) -> f64 {
        self.gpus as f64 * self.duration.as_secs_f64()
    }

    /// When the job started running.
    pub fn start(&self) -> SimTime {
        self.submit + self.queue_delay
    }

    /// When the job left the system.
    pub fn end(&self) -> SimTime {
        self.start() + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_seconds_product() {
        let j = JobRecord {
            id: 1,
            cluster: Cluster::Kalos,
            job_type: JobType::Pretrain,
            submit: SimTime::from_secs(100),
            queue_delay: SimDuration::from_secs(50),
            duration: SimDuration::from_secs(10),
            gpus: 512,
            status: JobStatus::Completed,
        };
        assert_eq!(j.gpu_seconds(), 5120.0);
        assert_eq!(j.start(), SimTime::from_secs(150));
        assert_eq!(j.end(), SimTime::from_secs(160));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = JobType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), JobType::ALL.len());
        let s: std::collections::HashSet<_> = JobStatus::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(s.len(), 3);
    }
}
