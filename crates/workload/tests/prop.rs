//! Property-based tests for workload generation and aggregation.

use acme_sim_core::{SimDuration, SimRng};
use acme_workload::{TraceStats, WorkloadGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated traces are well-formed for any seed and horizon: sorted
    /// arrivals, sequential ids, positive durations, plausible demands.
    #[test]
    fn traces_well_formed(seed in any::<u64>(), days in 1.0f64..30.0) {
        let mut rng = SimRng::new(seed);
        let w = WorkloadGenerator::kalos().generate(&mut rng, days, 7);
        for pair in w.jobs.windows(2) {
            prop_assert!(pair[1].submit >= pair[0].submit);
            prop_assert_eq!(pair[1].id, pair[0].id + 1);
        }
        for j in &w.jobs {
            prop_assert!(j.duration >= SimDuration::from_secs(5));
            prop_assert!(j.gpus >= 1 && j.gpus <= 2048);
            prop_assert!(j.submit.as_secs_f64() <= days * 86_400.0);
        }
        if let Some(first) = w.jobs.first() {
            prop_assert_eq!(first.id, 7);
        }
    }

    /// Aggregation identities hold on every generated trace: type shares
    /// and status shares each sum to one; the demand CDFs are monotone and
    /// end at 1.
    #[test]
    fn aggregation_identities(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let w = WorkloadGenerator::seren().generate(&mut rng, 3.0, 0);
        prop_assume!(!w.jobs.is_empty());
        let stats = TraceStats::new(&w.jobs);
        let type_count: f64 = stats.type_shares().iter().map(|&(_, c, _)| c).sum();
        let type_time: f64 = stats.type_shares().iter().map(|&(_, _, t)| t).sum();
        prop_assert!((type_count - 1.0).abs() < 1e-9);
        prop_assert!((type_time - 1.0).abs() < 1e-9);
        let status_count: f64 = stats.status_shares().iter().map(|&(_, c, _)| c).sum();
        prop_assert!((status_count - 1.0).abs() < 1e-9);
        for cdf in [stats.demand_count_cdf(), stats.demand_gpu_time_cdf()] {
            for w in cdf.windows(2) {
                prop_assert!(w[1].1 >= w[0].1 - 1e-12);
            }
            prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    /// The streaming generator is the closed-world generator, lazily: any
    /// prefix of the stream equals the same prefix of the materialized
    /// trace, record for record, at every seed and horizon.
    #[test]
    fn stream_prefix_equals_closed_world_trace(seed in any::<u64>(), days in 1.0f64..10.0, take in 1usize..64) {
        let mut eager_rng = SimRng::new(seed);
        let eager = WorkloadGenerator::kalos().generate(&mut eager_rng, days, 3).jobs;
        let mut lazy_rng = SimRng::new(seed);
        let generator = WorkloadGenerator::kalos();
        let prefix: Vec<_> = generator.stream(&mut lazy_rng, days, 3).take(take).collect();
        prop_assert!(prefix.len() <= eager.len());
        prop_assert_eq!(&prefix[..], &eager[..prefix.len()]);
        // Consuming the whole stream reproduces the whole trace.
        let mut full_rng = SimRng::new(seed);
        let full: Vec<_> = generator.stream(&mut full_rng, days, 3).collect();
        prop_assert_eq!(full, eager);
    }

    /// CPU-job generation is well-formed too.
    #[test]
    fn cpu_jobs_well_formed(seed in any::<u64>(), days in 1.0f64..20.0) {
        let mut rng = SimRng::new(seed);
        let jobs = WorkloadGenerator::seren().generate_cpu(&mut rng, days, 0);
        for j in &jobs {
            prop_assert!(j.cpus >= 1 && j.cpus <= 128);
            prop_assert!(j.duration >= SimDuration::from_secs(1));
        }
        for pair in jobs.windows(2) {
            prop_assert!(pair[1].submit >= pair[0].submit);
        }
    }
}
