//! Asymptotic-scaling benchmarks for the critical-path kernels, new vs
//! old, at 1×/4×/16× workload. The point is the *growth curve*, not the
//! absolute numbers: the incremental BPE trainer and the LSH deduper
//! should grow near-linearly with corpus size where the retained reference
//! implementations (`train_reference`, `dedup_allpairs`) grow
//! quadratically. `BENCH_kernels.json` records a measured snapshot.
//!
//! ```text
//! cargo bench -p acme-bench --bench scaling
//! cargo bench -p acme-bench --bench scaling -- dedup
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use acme_data::corpus::{CorpusGenerator, Document};
use acme_data::dedup::MinHashDeduper;
use acme_data::tokenizer::BpeTokenizer;
use acme_failure::{FailureReason, LogAgent, LogBundle, LogCompressor};
use acme_sim_core::SimRng;

const SCALES: [usize; 3] = [1, 4, 16];

/// BPE training corpus: `100 × scale` documents of ~100 words over a
/// 50 000-word Zipfian vocabulary. The large vocabulary keeps the unique
/// word count growing with the corpus (at 1 500 words it saturates within
/// the first hundred documents, which would flatten the reference
/// trainer's cost curve and hide the asymptotic difference).
fn corpus_texts(scale: usize) -> Vec<String> {
    let mut rng = SimRng::new(42);
    CorpusGenerator::new(50_000, 100.0)
        .generate(&mut rng, 100 * scale)
        .into_iter()
        .map(|d| d.text)
        .collect()
}

/// Dedup corpus: `1000 × scale` documents. Both implementations pay the
/// same O(n) signature cost, so the corpus must be large enough for the
/// O(n²) pair scan to dominate it before the banding win is visible.
fn corpus_docs(scale: usize) -> Vec<Document> {
    let mut rng = SimRng::new(42);
    CorpusGenerator::new(1500, 100.0).generate(&mut rng, 1000 * scale)
}

fn bench_bpe_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpe_train");
    group.sample_size(10);
    for scale in SCALES {
        let texts = corpus_texts(scale);
        group.bench_function(&format!("incremental/{scale}x"), |b| {
            b.iter(|| black_box(BpeTokenizer::train(&texts, 512).merge_count()));
        });
        group.bench_function(&format!("reference/{scale}x"), |b| {
            b.iter(|| black_box(BpeTokenizer::train_reference(&texts, 512).merge_count()));
        });
    }
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup");
    group.sample_size(10);
    for scale in SCALES {
        let docs = corpus_docs(scale);
        let deduper = MinHashDeduper::new();
        group.bench_function(&format!("lsh/{scale}x"), |b| {
            b.iter_batched(
                || docs.clone(),
                |d| black_box(deduper.dedup(d).0.len()),
                BatchSize::LargeInput,
            );
        });
        group.bench_function(&format!("allpairs/{scale}x"), |b| {
            b.iter_batched(
                || docs.clone(),
                |d| black_box(deduper.dedup_allpairs(d).0.len()),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_log_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_compress");
    group.sample_size(10);
    let agent = LogAgent::default();
    for scale in SCALES {
        let mut rng = SimRng::new(42);
        let bundle = LogBundle::generate(FailureReason::CudaError, 400 * scale, &mut rng);
        group.bench_function(&format!("indexed/{scale}x"), |b| {
            b.iter(|| {
                let mut comp = LogCompressor::new();
                comp.add_rules(agent.mine_rules(&bundle.lines));
                black_box(comp.compress(&bundle.lines).len())
            });
        });
        group.bench_function(&format!("reference/{scale}x"), |b| {
            b.iter(|| {
                let mut comp = acme_failure::LogCompressorReference::new();
                comp.add_rules(agent.mine_rules_reference(&bundle.lines));
                black_box(comp.compress(&bundle.lines).len())
            });
        });
    }
    group.finish();
}

criterion_group!(scaling, bench_bpe_train, bench_dedup, bench_log_compress);
criterion_main!(scaling);
