//! Criterion benchmarks for the simulation kernel: event queue, RNG,
//! distributions, and trace generation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use acme_sim_core::dist::{Categorical, Distribution, LogNormal};
use acme_sim_core::{EventQueue, HeapEventQueue, SimDuration, SimRng, SimTime};
use acme_telemetry::Cdf;
use acme_workload::WorkloadGenerator;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000)).collect();
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_micros(t), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        );
    });

    // The steady-state shape every simulation loop hits: a bounded pending
    // set with relative timers, drained through the deadline-checked pop.
    // Exercises `with_capacity`, `schedule_in`, and the single-probe
    // `pop_before` fast paths together.
    c.bench_function("event_queue/throughput_steady_state_10k", |b| {
        let mut rng = SimRng::new(5);
        let delays: Vec<u64> = (0..10_000).map(|_| 1 + rng.below(10_000)).collect();
        b.iter_batched(
            || {
                let mut q = EventQueue::with_capacity(64);
                for (i, &d) in delays.iter().take(64).enumerate() {
                    q.schedule_in(SimDuration::from_micros(d), i);
                }
                q
            },
            |mut q| {
                let mut next = 64usize;
                let deadline = SimTime::from_secs(1_000_000);
                while let Some((_, i)) = q.pop_before(deadline) {
                    black_box(i);
                    if next < delays.len() {
                        q.schedule_in(SimDuration::from_micros(delays[next]), next);
                        next += 1;
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
}

/// The classic hold model for priority-queue comparison: keep the pending
/// set at a fixed size while the loop pops the earliest event and schedules
/// a replacement a random delay out. Runs the shipped calendar queue
/// against the retained binary-heap oracle at 1k / 100k / 1M pending
/// events — the regime where the heap's `O(log n)` per operation separates
/// from the calendar's `O(1)`.
fn bench_event_queue_hold(c: &mut Criterion) {
    /// 64 hold operations per timed iteration.
    const OPS: usize = 64;

    macro_rules! hold {
        ($b:expr, $n:expr, $q:expr) => {{
            let mut rng = SimRng::new(7);
            let mut q = $q;
            for i in 0..$n {
                q.schedule_in(SimDuration::from_micros(1 + rng.below(1_000_000)), i);
            }
            let mut next = $n;
            $b.iter(|| {
                for _ in 0..OPS {
                    let (_, e) = q.pop().expect("held set never empties");
                    black_box(e);
                    q.schedule_in(SimDuration::from_micros(1 + rng.below(1_000_000)), next);
                    next += 1;
                }
            });
        }};
    }

    for n in [1_000usize, 100_000, 1_000_000] {
        let mut group = c.benchmark_group(&format!("event_queue/hold_{n}"));
        group.bench_function("calendar", |b| hold!(b, n, EventQueue::with_capacity(n)));
        group.bench_function("heap", |b| hold!(b, n, HeapEventQueue::with_capacity(n)));
        group.finish();
    }
}

fn bench_cdf(c: &mut Criterion) {
    let mut rng = SimRng::new(6);
    let d = LogNormal::from_median_mean(2.0, 35.0);
    let samples: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();

    c.bench_function("cdf/from_samples_10k", |b| {
        b.iter_batched(
            || samples.clone(),
            |xs| black_box(Cdf::from_samples(xs)),
            BatchSize::SmallInput,
        );
    });

    let mut sorted = samples.clone();
    sorted.sort_unstable_by(f64::total_cmp);
    c.bench_function("cdf/from_sorted_10k", |b| {
        b.iter_batched(
            || sorted.clone(),
            |xs| black_box(Cdf::from_sorted(xs)),
            BatchSize::SmallInput,
        );
    });

    let cdf = Cdf::from_samples(samples.clone()).expect("non-empty samples");
    c.bench_function("cdf/quantile_sweep_x100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += cdf.quantile(i as f64 / 99.0);
            }
            black_box(acc)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_x1000", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });

    c.bench_function("dist/lognormal_x1000", |b| {
        let mut rng = SimRng::new(3);
        let d = LogNormal::from_median_mean(2.0, 35.0);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        });
    });

    c.bench_function("dist/categorical_x1000", |b| {
        let mut rng = SimRng::new(4);
        let cat = Categorical::new(&[92.9, 3.2, 2.0, 1.9]);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += cat.sample_index(&mut rng);
            }
            black_box(acc)
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/kalos_30_days", |b| {
        let gen = WorkloadGenerator::kalos();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            black_box(gen.generate(&mut rng, 30.0, 0).jobs.len())
        });
    });

    let mut group = c.benchmark_group("workload/seren_7_days");
    group.sample_size(20);
    group.bench_function("generate", |b| {
        let gen = WorkloadGenerator::seren();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            black_box(gen.generate(&mut rng, 7.0, 0).jobs.len())
        });
    });
    group.finish();
}

criterion_group!(
    kernel,
    bench_event_queue,
    bench_event_queue_hold,
    bench_cdf,
    bench_rng,
    bench_workload_generation
);
criterion_main!(kernel);
