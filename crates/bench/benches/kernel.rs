//! Criterion benchmarks for the simulation kernel: event queue, RNG,
//! distributions, and trace generation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use acme_sim_core::dist::{Categorical, Distribution, LogNormal};
use acme_sim_core::{EventQueue, SimRng, SimTime};
use acme_workload::WorkloadGenerator;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000)).collect();
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_micros(t), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_x1000", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });

    c.bench_function("dist/lognormal_x1000", |b| {
        let mut rng = SimRng::new(3);
        let d = LogNormal::from_median_mean(2.0, 35.0);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        });
    });

    c.bench_function("dist/categorical_x1000", |b| {
        let mut rng = SimRng::new(4);
        let cat = Categorical::new(&[92.9, 3.2, 2.0, 1.9]);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..1000 {
                acc += cat.sample_index(&mut rng);
            }
            black_box(acc)
        });
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/kalos_30_days", |b| {
        let gen = WorkloadGenerator::kalos();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            black_box(gen.generate(&mut rng, 30.0, 0).jobs.len())
        });
    });

    let mut group = c.benchmark_group("workload/seren_7_days");
    group.sample_size(20);
    group.bench_function("generate", |b| {
        let gen = WorkloadGenerator::seren();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            black_box(gen.generate(&mut rng, 7.0, 0).jobs.len())
        });
    });
    group.finish();
}

criterion_group!(
    kernel,
    bench_event_queue,
    bench_rng,
    bench_workload_generation
);
criterion_main!(kernel);
