//! End-to-end harness benchmark: the full `repro all` experiment sweep,
//! sequential and parallel, through the exact code path the binary uses.
//! This is the number `BENCH_repro_all.json` tracks across the project's
//! history — a regression here is a regression in `repro all` itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use acme::experiments::{default_jobs, run_selection, select, RunParams};
use acme_bench::render_report;

fn bench_repro_all(c: &mut Criterion) {
    let selection = select(&["all".to_string()]).expect("`all` always resolves");

    let mut group = c.benchmark_group("repro_all");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let runs = run_selection(&selection, RunParams::new(42), 1);
            black_box(render_report(42, &runs).len())
        });
    });

    group.bench_function("parallel_all_cores", |b| {
        let jobs = default_jobs().min(selection.len());
        b.iter(|| {
            let runs = run_selection(&selection, RunParams::new(42), jobs);
            black_box(render_report(42, &runs).len())
        });
    });

    group.finish();
}

criterion_group!(repro_all, bench_repro_all);
criterion_main!(repro_all);
