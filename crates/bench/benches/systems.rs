//! Criterion benchmarks for the system pipelines: the cluster scheduler,
//! failure diagnosis, the evaluation coordinator, checkpoint modelling and
//! training step timelines — one benchmark per paper system, so the cost
//! of regenerating each artifact is itself measured.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use acme_evaluation::benchmarks::registry;
use acme_evaluation::coordinator::{run as run_eval, Scheduler};
use acme_failure::{DiagnosisPipeline, FailureInjector, FailureReason, LogBundle};
use acme_scheduler::{coalesce_eval_batches, ClusterScheduler, SchedulerConfig};
use acme_sim_core::{SimDuration, SimRng};
use acme_training::checkpoint::{CheckpointEngine, CheckpointMode, CheckpointScenario};
use acme_training::{ModelConfig, StepTimeline, Strategy};
use acme_workload::WorkloadGenerator;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    group.bench_function("kalos_month_with_reservation", |b| {
        let mut rng = SimRng::new(1);
        let mut jobs = WorkloadGenerator::kalos().generate(&mut rng, 30.0, 0).jobs;
        coalesce_eval_batches(&mut jobs, SimDuration::from_hours(24));
        let sched = ClusterScheduler::new(SchedulerConfig::with_reservation(2560, 0.985));
        b.iter(|| black_box(sched.run(jobs.clone()).finished_at));
    });
    group.finish();
}

fn bench_diagnosis(c: &mut Criterion) {
    c.bench_function("diagnosis/log_generate_compress_classify", |b| {
        let mut rng = SimRng::new(2);
        let mut pipeline = DiagnosisPipeline::with_all_rules();
        b.iter(|| {
            let reason = *rng.pick(&FailureReason::ALL);
            let bundle = LogBundle::generate(reason, 200, &mut rng);
            black_box(pipeline.diagnose(&bundle.lines).is_some())
        });
    });

    c.bench_function("diagnosis/inject_six_months", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::new(seed);
            black_box(FailureInjector::six_months().generate(&mut rng).len())
        });
    });
}

fn bench_evaluation(c: &mut Criterion) {
    c.bench_function("evaluation/coordinator_4_nodes", |b| {
        let datasets = registry();
        let storage = acme_cluster::SharedStorage::seren();
        b.iter(|| {
            black_box(
                run_eval(Scheduler::FullCoordinator, &datasets, 4, &storage, 14.0)
                    .unwrap()
                    .makespan_secs,
            )
        });
    });
}

fn bench_training_models(c: &mut Criterion) {
    c.bench_function("training/step_timeline_v1_2048", |b| {
        let model = ModelConfig::dense_123b();
        let strat = Strategy::three_d_paper(2048);
        b.iter(|| {
            let tl = StepTimeline::dense(&model, &strat, 4 * 1024 * 1024);
            black_box(tl.mean_sm_util())
        });
    });

    c.bench_function("training/checkpoint_sweep", |b| {
        let e = CheckpointEngine::new(CheckpointScenario::paper_123b());
        b.iter(|| {
            let mut acc = 0.0;
            for mins in 1..=240 {
                acc += e.overhead_fraction(CheckpointMode::Synchronous, mins as f64 * 60.0);
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    systems,
    bench_scheduler,
    bench_diagnosis,
    bench_evaluation,
    bench_training_models
);
criterion_main!(systems);
