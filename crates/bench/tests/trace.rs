//! The flight recorder's two contracts (DESIGN.md §10), tested end to
//! end through the exact code path the `repro` binary uses:
//!
//! 1. **Zero observable cost when off, zero interference when on** —
//!    stdout is byte-identical with tracing enabled vs disabled, because
//!    recording happens beside the simulation, never inside its control
//!    flow or rng stream.
//! 2. **Deterministic exports** — the Chrome trace-event JSON and the
//!    journal are byte-identical across reruns and across `--jobs`/shard
//!    worker counts, at more than one seed.

use acme::experiments::{run_selection, select, set_workers, ExperimentRun, RunParams};
use acme_bench::{render_report, trace_processes};
use acme_obs::{chrome_trace_json, journal};

/// The experiments that record flight-recorder chunks.
const INSTRUMENTED: [&str; 6] = [
    "pipeline",
    "storm",
    "evalstorm",
    "fleet",
    "blame",
    "policylab",
];

fn traced_runs(seed: u64, jobs: usize, workers: usize) -> Vec<ExperimentRun> {
    let ids: Vec<String> = INSTRUMENTED.iter().map(|s| s.to_string()).collect();
    let selection = select(&ids).unwrap();
    set_workers(workers);
    let runs = run_selection(&selection, RunParams::new(seed).with_trace(true), jobs);
    set_workers(1);
    runs
}

#[test]
fn stdout_is_byte_identical_with_tracing_on_vs_off() {
    let selection = select(&["all".to_string()]).unwrap();
    let off = run_selection(&selection, RunParams::new(42), 4);
    let on = run_selection(&selection, RunParams::new(42).with_trace(true), 4);
    assert!(
        render_report(42, &off) == render_report(42, &on),
        "enabling the flight recorder changed experiment output at seed 42"
    );
    // And the traced run actually recorded something to export.
    assert!(!trace_processes(&on).is_empty());
    assert!(
        trace_processes(&off).is_empty(),
        "tracing off must record nothing"
    );
}

#[test]
fn trace_exports_are_byte_identical_across_reruns_and_jobs() {
    for seed in [42, 7] {
        let baseline = traced_runs(seed, 1, 1);
        let rerun = traced_runs(seed, 1, 1);
        let parallel = traced_runs(seed, 8, 8);
        let (base, base_j) = (
            chrome_trace_json(&trace_processes(&baseline)),
            journal(&trace_processes(&baseline)),
        );
        assert_eq!(
            base,
            chrome_trace_json(&trace_processes(&rerun)),
            "chrome trace differs across reruns at seed {seed}"
        );
        assert_eq!(
            base,
            chrome_trace_json(&trace_processes(&parallel)),
            "chrome trace differs between jobs 1 and 8 at seed {seed}"
        );
        assert_eq!(
            base_j,
            journal(&trace_processes(&parallel)),
            "journal differs between jobs 1 and 8 at seed {seed}"
        );
    }
}

#[test]
fn every_instrumented_experiment_records_chunks() {
    let runs = traced_runs(42, 1, 1);
    for run in &runs {
        assert!(
            !run.trace.is_empty(),
            "{} is instrumented but recorded no chunks",
            run.id
        );
    }
    // Chunk labels are unique within each experiment: they become
    // Perfetto thread names, and duplicates would silently merge tracks.
    for run in &runs {
        let mut labels: Vec<&str> = run.trace.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len(), "duplicate chunk label in {}", run.id);
    }
}

#[test]
fn chrome_export_shape_is_valid() {
    let runs = traced_runs(42, 1, 1);
    let json = chrome_trace_json(&trace_processes(&runs));
    assert!(json.starts_with("{\"traceEvents\": [\n"));
    assert!(json.ends_with("], \"displayTimeUnit\": \"ms\"}\n"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // One process-name metadata row per instrumented experiment.
    for id in INSTRUMENTED {
        assert!(
            json.contains(&format!(
                "\"process_name\", \"args\": {{\"name\": \"{id}\"}}"
            )),
            "no process row for {id}"
        );
    }
    // Spans balance within the storm recording (every B has its E).
    assert_eq!(
        json.matches("\"ph\": \"B\"").count(),
        json.matches("\"ph\": \"E\"").count()
    );
}

#[test]
fn queue_counters_surface_event_activity() {
    // evalstorm runs on the sim-core event queue, so its counters must be
    // live; they also must not depend on tracing (they are always on).
    let ids = vec!["evalstorm".to_string()];
    let selection = select(&ids).unwrap();
    let off = run_selection(&selection, RunParams::new(42), 1);
    let on = run_selection(&selection, RunParams::new(42).with_trace(true), 1);
    assert!(off[0].queue.pops > 0, "evalstorm popped no events?");
    assert!(off[0].queue.max_depth > 0);
    assert_eq!(off[0].queue, on[0].queue, "tracing changed queue activity");
}
