//! The tentpole invariant of the parallel harness: `repro all --jobs N`
//! produces **byte-identical stdout** to the sequential run, for every
//! seed. These tests exercise the exact code path the binary uses
//! (`select` → `run_selection` → `render_report`), so a pass here is a
//! pass for the shipped tool.

use acme::experiments::{run_selection, select, set_workers, RunParams};
use acme_bench::render_report;

fn full_report(seed: u64, jobs: usize) -> String {
    let selection = select(&["all".to_string()]).expect("`all` always resolves");
    let runs = run_selection(&selection, RunParams::new(seed), jobs);
    render_report(seed, &runs)
}

#[test]
fn parallel_report_is_byte_identical_seed_42() {
    let sequential = full_report(42, 1);
    let parallel = full_report(42, 4);
    assert!(
        sequential == parallel,
        "jobs=4 diverged from jobs=1 at seed 42"
    );
}

#[test]
fn parallel_report_is_byte_identical_seed_7() {
    let sequential = full_report(7, 1);
    let parallel = full_report(7, 4);
    assert!(
        sequential == parallel,
        "jobs=4 diverged from jobs=1 at seed 7"
    );
}

#[test]
fn oversubscribed_workers_are_harmless() {
    // More workers than experiments in the subset: jobs is clamped and the
    // report is still identical.
    let ids: Vec<String> = ["fig6", "table3", "ckpt"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let selection = select(&ids).unwrap();
    let sequential = render_report(42, &run_selection(&selection, RunParams::new(42), 1));
    let parallel = render_report(42, &run_selection(&selection, RunParams::new(42), 64));
    assert_eq!(sequential, parallel);
}

/// The experiments that fan out internally. Shard workers must never
/// change a byte of output, at any seed.
const SHARDED: [&str; 10] = [
    "diag",
    "pipeline",
    "data",
    "fig2",
    "storm",
    "evalstorm",
    "fleet",
    "blame",
    "policylab",
    "netstorm",
];

#[test]
fn intra_experiment_sharding_is_byte_identical() {
    let ids: Vec<String> = SHARDED.iter().map(|s| s.to_string()).collect();
    let selection = select(&ids).unwrap();
    for seed in [42, 7] {
        set_workers(1);
        let inline = render_report(seed, &run_selection(&selection, RunParams::new(seed), 1));
        set_workers(8);
        let sharded = render_report(seed, &run_selection(&selection, RunParams::new(seed), 2));
        set_workers(1);
        assert!(
            inline == sharded,
            "8 shard workers diverged from inline at seed {seed}"
        );
    }
}

#[test]
fn sharded_experiments_report_shard_timings() {
    let ids: Vec<String> = SHARDED.iter().map(|s| s.to_string()).collect();
    let selection = select(&ids).unwrap();
    let runs = run_selection(&selection, RunParams::new(42), 1);
    for run in &runs {
        assert!(
            !run.shards.is_empty(),
            "{} is sharded but recorded no shard timings",
            run.id
        );
    }
    // And the labels within each experiment are unique — `--timings-json`
    // consumers key on (experiment, shard).
    for run in &runs {
        let mut labels: Vec<&str> = run.shards.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len(), "duplicate shard label in {}", run.id);
    }
}

#[test]
fn report_starts_with_seed_header() {
    let report = full_report(7, 2);
    assert!(report.starts_with("# Acme reproduction — seed 7\n\n"));
    // Every experiment contributes a `### id — title` section.
    assert_eq!(report.matches("\n### ").count(), 42);
}
