//! Golden-output regression test: the full `repro all --seed 42` report
//! must hash to the committed digest. Any behavioural drift in any
//! experiment — kernel rewrites included — shows up here before it shows
//! up in a stale EXPERIMENTS.md.
//!
//! When an *intentional* output change lands, regenerate the digest with
//! the command printed by the failure message and update the constant in
//! the same commit that changes the output.

/// FNV-1a 64 over the report bytes (matches the repo's hashing idiom).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of `render_report(42, <pre-storm registry>)` at default scale —
/// the exact bytes `repro all --seed 42` produced before the `storm`
/// experiment was appended. The registry keeps `storm` last precisely so
/// this historical digest stays checkable: swapping the benign
/// `RecoveryOrchestrator` into the development pipeline must not move a
/// single byte of any pre-existing experiment.
const GOLDEN_SEED42_DIGEST: u64 = 0xaf5b_e879_f4df_5a65;

/// Digest of `render_report(42, <pre-evalstorm registry>)` — the exact
/// bytes `repro all --seed 42` produced when `storm` was the last
/// experiment, before `evalstorm` was appended. Pins down that rebuilding
/// the evaluation coordinator as a discrete-event simulation moved no byte
/// of any earlier experiment.
const GOLDEN_SEED42_PRE_EVALSTORM_DIGEST: u64 = 0x89fd_d346_f56a_626e;

/// Digest of `render_report(42, <pre-fleet registry>)` — the exact bytes
/// `repro all --seed 42` produced when `evalstorm` was the last
/// experiment, before `fleet` was appended. Pins down that the streaming
/// generator rewrite and the sketch-backed telemetry switch moved no byte
/// of any earlier experiment.
const GOLDEN_SEED42_PRE_FLEET_DIGEST: u64 = 0x5c06_5f6d_e10d_5238;

/// Digest of `render_report(42, <pre-blame registry>)` — the exact bytes
/// `repro all --seed 42` produced when `fleet` was the last experiment,
/// before `blame` was appended. Pins down that the flight-recorder
/// instrumentation (spans/counters threaded through the storm runner, the
/// fault-tolerant coordinator, the pipeline trainer, and the event queue)
/// moved no byte of any earlier experiment while tracing is off.
const GOLDEN_SEED42_PRE_BLAME_DIGEST: u64 = 0x21de_a4b6_0c94_8e4a;

/// Digest of `render_report(42, <pre-policylab registry>)` — the exact
/// bytes `repro all --seed 42` produced when `blame` was the last
/// experiment, before `policylab` was appended. Pins down that extracting
/// the recovery strategies into `acme-policy` trait objects (checkpoint
/// cadence, retry ladders, cordon strikes, repair turnaround, speculation,
/// repacking) moved no byte of any earlier experiment: the default policy
/// objects reproduce the previously hardwired arms exactly.
const GOLDEN_SEED42_PRE_POLICYLAB_DIGEST: u64 = 0x7968_2b78_ff97_8646;

/// Digest of `render_report(42, <pre-netstorm registry>)` — the exact
/// bytes `repro all --seed 42` produced when `policylab` was the last
/// experiment, before `netstorm` was appended. Pins down that routing the
/// collective, checkpoint and probe prices through the fat-tree substrate
/// moved no byte of any earlier experiment: on a healthy tree the derived
/// bottleneck is the same float as the analytic constant, and the network
/// fault stream only exists when a storm opts in.
const GOLDEN_SEED42_PRE_NETSTORM_DIGEST: u64 = 0xae7c_4615_e9a3_39ad;

/// Digest of the full `render_report(42, repro all)`, `netstorm`
/// included.
const GOLDEN_SEED42_FULL_DIGEST: u64 = 0xf76f_7703_f72b_6770;

#[test]
fn repro_all_seed42_pre_storm_prefix_matches_historical_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let pre_storm: Vec<_> = selection
        .into_iter()
        .filter(|e| {
            e.id != "storm"
                && e.id != "evalstorm"
                && e.id != "fleet"
                && e.id != "blame"
                && e.id != "policylab"
                && e.id != "netstorm"
        })
        .collect();
    let runs =
        acme::experiments::run_selection(&pre_storm, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_DIGEST,
        "seed-42 pre-storm report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_DIGEST:#018x}. The benign orchestrator (or another change) perturbed a \
         pre-existing experiment. If the change is intentional, update GOLDEN_SEED42_DIGEST."
    );
}

#[test]
fn repro_all_seed42_pre_evalstorm_prefix_matches_historical_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let pre_evalstorm: Vec<_> = selection
        .into_iter()
        .filter(|e| {
            e.id != "evalstorm"
                && e.id != "fleet"
                && e.id != "blame"
                && e.id != "policylab"
                && e.id != "netstorm"
        })
        .collect();
    let runs =
        acme::experiments::run_selection(&pre_evalstorm, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_PRE_EVALSTORM_DIGEST,
        "seed-42 pre-evalstorm report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_PRE_EVALSTORM_DIGEST:#018x}. The event-driven coordinator rewrite (or \
         another change) perturbed a pre-existing experiment. If the change is intentional, \
         update GOLDEN_SEED42_PRE_EVALSTORM_DIGEST."
    );
}

#[test]
fn repro_all_seed42_pre_fleet_prefix_matches_historical_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let pre_fleet: Vec<_> = selection
        .into_iter()
        .filter(|e| e.id != "fleet" && e.id != "blame" && e.id != "policylab" && e.id != "netstorm")
        .collect();
    let runs =
        acme::experiments::run_selection(&pre_fleet, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_PRE_FLEET_DIGEST,
        "seed-42 pre-fleet report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_PRE_FLEET_DIGEST:#018x}. The streaming-generator/sketch-telemetry \
         rewrite (or another change) perturbed a pre-existing experiment. If the change is \
         intentional, update GOLDEN_SEED42_PRE_FLEET_DIGEST."
    );
}

#[test]
fn repro_all_seed42_pre_blame_prefix_matches_historical_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let pre_blame: Vec<_> = selection
        .into_iter()
        .filter(|e| e.id != "blame" && e.id != "policylab" && e.id != "netstorm")
        .collect();
    let runs =
        acme::experiments::run_selection(&pre_blame, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_PRE_BLAME_DIGEST,
        "seed-42 pre-blame report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_PRE_BLAME_DIGEST:#018x}. The flight-recorder instrumentation (or \
         another change) perturbed a pre-existing experiment. If the change is intentional, \
         update GOLDEN_SEED42_PRE_BLAME_DIGEST."
    );
}

#[test]
fn repro_all_seed42_pre_policylab_prefix_matches_historical_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let pre_policylab: Vec<_> = selection
        .into_iter()
        .filter(|e| e.id != "policylab" && e.id != "netstorm")
        .collect();
    let runs =
        acme::experiments::run_selection(&pre_policylab, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_PRE_POLICYLAB_DIGEST,
        "seed-42 pre-policylab report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_PRE_POLICYLAB_DIGEST:#018x}. The policy-object extraction (or another \
         change) perturbed a pre-existing experiment. If the change is intentional, update \
         GOLDEN_SEED42_PRE_POLICYLAB_DIGEST."
    );
}

#[test]
fn repro_all_seed42_pre_netstorm_prefix_matches_historical_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let pre_netstorm: Vec<_> = selection
        .into_iter()
        .filter(|e| e.id != "netstorm")
        .collect();
    let runs =
        acme::experiments::run_selection(&pre_netstorm, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_PRE_NETSTORM_DIGEST,
        "seed-42 pre-netstorm report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_PRE_NETSTORM_DIGEST:#018x}. The network substrate (or another change) \
         perturbed a pre-existing experiment. If the change is intentional, update \
         GOLDEN_SEED42_PRE_NETSTORM_DIGEST."
    );
}

#[test]
fn repro_all_seed42_matches_golden_digest() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let runs =
        acme::experiments::run_selection(&selection, acme::experiments::RunParams::new(42), 4);
    let report = acme_bench::render_report(42, &runs);
    let digest = fnv1a_64(report.as_bytes());
    assert_eq!(
        digest, GOLDEN_SEED42_FULL_DIGEST,
        "seed-42 report drifted: digest {digest:#018x}, expected \
         {GOLDEN_SEED42_FULL_DIGEST:#018x}. If the change is intentional, update \
         GOLDEN_SEED42_FULL_DIGEST."
    );
}

#[test]
fn report_is_jobs_invariant() {
    let selection = acme::experiments::select(&["all".to_string()]).unwrap();
    let p = acme::experiments::RunParams::new(42);
    let seq = acme_bench::render_report(42, &acme::experiments::run_selection(&selection, p, 1));
    let par = acme_bench::render_report(42, &acme::experiments::run_selection(&selection, p, 8));
    assert_eq!(seq, par);
}
