//! `bench_guard` — fail CI when an experiment regresses past a factor.
//!
//! Compares a fresh `repro all --timings-json` dump against the checked-in
//! baseline (`BENCH_repro_all.json`) and exits non-zero if any experiment
//! got slower than `--factor` × its baseline (default 2.0 — a loose bound
//! chosen to catch real algorithmic regressions without flaking on shared
//! CI-runner noise). Experiments under a small absolute noise floor are
//! never flagged: at sub-millisecond durations the timer jitter exceeds
//! any signal.
//!
//! ```text
//! bench_guard --baseline BENCH_repro_all.json --current current.json
//! bench_guard --baseline a.json --current b.json --factor 3.0
//! ```
//!
//! The JSON is parsed with a purpose-built scanner (schema:
//! `{seed, jobs, wall_ms, experiments: [{id, ms}, ...]}`) — the workspace
//! deliberately carries no serde. The scanner keys on `id` and `ms` only,
//! so extra per-experiment fields (`events_processed`, `max_queue_depth`
//! from the flight-recorder PR) and extra header fields pass through
//! untouched.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default for `--noise-floor`: regressions smaller than this many
/// milliseconds are ignored outright — timer noise, not signal. Dumps made
/// of sub-millisecond kernels (the event-queue hold bench) lower it.
const NOISE_FLOOR_MS: f64 = 1.0;

/// Extract `(id, ms)` pairs from a timings dump. Tolerant of whitespace
/// and field order within each experiment object; returns an error when no
/// experiment entry can be found (wrong file, wrong schema).
fn parse_timings(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let body = json
        .split_once("\"experiments\"")
        .ok_or("no \"experiments\" key")?
        .1;
    // Stop at the experiments array's closing bracket: later sections of
    // the dump (the per-shard timings) hold objects without an `id` key.
    let body = match body.find(']') {
        Some(end) => &body[..end],
        None => body,
    };
    // Each experiment object is `{...}`; scan object by object.
    let mut rest = body;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or("unterminated experiment object")?
            + open;
        let obj = &rest[open + 1..close];
        let id = field_str(obj, "id").ok_or_else(|| format!("object without id: {obj}"))?;
        let ms = field_num(obj, "ms").ok_or_else(|| format!("object without ms: {obj}"))?;
        out.insert(id, ms);
        rest = &rest[close + 1..];
    }
    if out.is_empty() {
        return Err("no experiment entries found".into());
    }
    Ok(out)
}

/// `"key": "value"` within one flat JSON object body.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let tail = obj.split_once(&format!("\"{key}\""))?.1;
    let tail = tail.trim_start().strip_prefix(':')?.trim_start();
    let tail = tail.strip_prefix('"')?;
    Some(tail.split_once('"')?.0.to_owned())
}

/// `"key": 12.345` within one flat JSON object body.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let tail = obj.split_once(&format!("\"{key}\""))?.1;
    let tail = tail.trim_start().strip_prefix(':')?.trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

struct Args {
    baseline: String,
    current: String,
    factor: f64,
    noise_floor_ms: f64,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let (mut baseline, mut current, mut factor) = (None, None, 2.0f64);
    let mut noise_floor_ms = NOISE_FLOOR_MS;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(args.next().ok_or("--baseline needs a path")?),
            "--current" => current = Some(args.next().ok_or("--current needs a path")?),
            "--factor" => {
                let v = args.next().ok_or("--factor needs a value")?;
                factor = v.parse().map_err(|_| format!("bad factor: {v}"))?;
                if factor < 1.0 || factor.is_nan() {
                    return Err("--factor must be >= 1.0".into());
                }
            }
            "--noise-floor" => {
                let v = args.next().ok_or("--noise-floor needs a value (ms)")?;
                noise_floor_ms = v.parse().map_err(|_| format!("bad noise floor: {v}"))?;
                if noise_floor_ms.is_nan() || noise_floor_ms < 0.0 {
                    return Err("--noise-floor must be >= 0".into());
                }
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        factor,
        noise_floor_ms,
    })
}

/// Ids present in the current dump but absent from the baseline — newly
/// added experiments (e.g. `storm` before a baseline refresh). These are
/// reported as an informative notice, never an error: a new experiment has
/// no baseline to regress against.
fn unbaselined(baseline: &BTreeMap<String, f64>, current: &BTreeMap<String, f64>) -> Vec<String> {
    current
        .keys()
        .filter(|id| !baseline.contains_key(*id))
        .cloned()
        .collect()
}

/// The ids that regressed: `(id, baseline ms, current ms)`.
fn regressions(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    factor: f64,
    noise_floor_ms: f64,
) -> Vec<(String, f64, f64)> {
    let mut bad = Vec::new();
    for (id, &base_ms) in baseline {
        let Some(&cur_ms) = current.get(id) else {
            continue; // experiment removed/renamed: not a perf regression
        };
        if cur_ms > base_ms * factor && cur_ms - base_ms > noise_floor_ms {
            bad.push((id.clone(), base_ms, cur_ms));
        }
    }
    bad
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: bench_guard --baseline PATH --current PATH [--factor F] [--noise-floor MS]"
            );
            return ExitCode::FAILURE;
        }
    };
    let load = |path: &str| -> Result<BTreeMap<String, f64>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_timings(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(&args.baseline), load(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    let new_ids = unbaselined(&baseline, &current);
    if !new_ids.is_empty() {
        println!(
            "bench_guard: {} experiment(s) not in baseline (skipped, refresh the baseline to cover them): {}",
            new_ids.len(),
            new_ids.join(", ")
        );
    }

    let bad = regressions(&baseline, &current, args.factor, args.noise_floor_ms);
    if bad.is_empty() {
        println!(
            "bench_guard: {} experiment(s) within {}x of baseline",
            baseline.len(),
            args.factor
        );
        return ExitCode::SUCCESS;
    }
    for (id, base_ms, cur_ms) in &bad {
        eprintln!(
            "REGRESSION {id}: {cur_ms:.3} ms vs baseline {base_ms:.3} ms ({:.2}x, limit {}x)",
            cur_ms / base_ms,
            args.factor
        );
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "seed": 42,
  "jobs": 1,
  "wall_ms": 100.0,
  "experiments": [
    {"id": "fig2", "ms": 10.000},
    {"id": "data", "ms": 50.250}
  ],
  "shards": [
    {"experiment": "data", "shard": "loader/on-the-fly", "ms": 24.000}
  ]
}
"#;

    #[test]
    fn parses_the_repro_dump_schema() {
        let t = parse_timings(SAMPLE).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t["fig2"], 10.0);
        assert_eq!(t["data"], 50.25);
    }

    #[test]
    fn shard_section_is_ignored() {
        // The per-shard section has id-less objects; the scan must stop at
        // the experiments array rather than choke on them.
        let t = parse_timings(SAMPLE).unwrap();
        assert!(!t.contains_key("loader/on-the-fly"));
        // And a dump without the section still parses.
        let legacy = SAMPLE.split(",\n  \"shards\"").next().unwrap().to_owned() + "\n}\n";
        assert_eq!(parse_timings(&legacy).unwrap().len(), 2);
    }

    #[test]
    fn tolerates_event_queue_counter_fields() {
        // The flight-recorder PR added per-experiment queue counters; the
        // scanner must keep extracting (id, ms) and ignore the rest.
        let with_counters = r#"{
  "seed": 42,
  "jobs": 4,
  "wall_ms": 100.0,
  "peak_rss_bytes": 123456,
  "experiments": [
    {"id": "fig2", "ms": 10.000, "events_processed": 0, "max_queue_depth": 0},
    {"id": "evalstorm", "ms": 20.500, "events_processed": 51234, "max_queue_depth": 87}
  ],
  "shards": []
}
"#;
        let t = parse_timings(with_counters).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t["fig2"], 10.0);
        assert_eq!(t["evalstorm"], 20.5);
    }

    #[test]
    fn tolerates_the_sweep_section() {
        // The policy-lab PR added a per-cell `sweep` section after
        // `shards`; its objects carry `ms` but no `id`, so the scanner's
        // stop-at-first-`]` rule is what keeps them invisible here.
        let with_sweep = r#"{
  "seed": 42,
  "jobs": 8,
  "wall_ms": 400.0,
  "experiments": [
    {"id": "policylab", "ms": 350.000, "events_processed": 0, "max_queue_depth": 0}
  ],
  "shards": [
    {"experiment": "policylab", "shard": "cell/retry + backoff/s42/i1", "ms": 4.000}
  ],
  "sweep": [
    {"experiment": "policylab", "policy": "retry + backoff", "seed": 42, "intensity": 1, "ms": 4.000}
  ]
}
"#;
        let t = parse_timings(with_sweep).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t["policylab"], 350.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_timings("{}").is_err());
        assert!(parse_timings("{\"experiments\": []}").is_err());
    }

    #[test]
    fn flags_only_real_regressions() {
        let base = parse_timings(SAMPLE).unwrap();
        let mut cur = base.clone();
        // Within factor: fine.
        cur.insert("data".into(), 90.0);
        assert!(regressions(&base, &cur, 2.0, NOISE_FLOOR_MS).is_empty());
        // Past factor: flagged.
        cur.insert("data".into(), 120.0);
        let bad = regressions(&base, &cur, 2.0, NOISE_FLOOR_MS);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "data");
    }

    #[test]
    fn noise_floor_protects_fast_experiments() {
        let mut base = BTreeMap::new();
        base.insert("tiny".to_string(), 0.2);
        let mut cur = BTreeMap::new();
        // 5x "regression" but only 0.8 ms of it: ignored.
        cur.insert("tiny".to_string(), 1.0);
        assert!(regressions(&base, &cur, 2.0, NOISE_FLOOR_MS).is_empty());
        // A lowered floor (sub-millisecond kernel dumps) does flag it.
        assert_eq!(regressions(&base, &cur, 2.0, 0.001).len(), 1);
    }

    #[test]
    fn missing_current_entry_is_not_a_regression() {
        let base = parse_timings(SAMPLE).unwrap();
        let cur = BTreeMap::new();
        assert!(regressions(&base, &cur, 2.0, NOISE_FLOOR_MS).is_empty());
    }

    #[test]
    fn new_experiment_is_a_notice_not_an_error() {
        let base = parse_timings(SAMPLE).unwrap();
        let mut cur = base.clone();
        cur.insert("storm".to_string(), 500.0);
        // Not in the baseline: surfaced by name…
        assert_eq!(unbaselined(&base, &cur), vec!["storm".to_string()]);
        // …but never counted as a regression, however slow it is.
        assert!(regressions(&base, &cur, 2.0, NOISE_FLOOR_MS).is_empty());
        // Established ids don't show up as new.
        assert!(unbaselined(&base, &base).is_empty());
    }

    #[test]
    fn arg_parsing() {
        let ok = parse_args(
            ["--baseline", "a", "--current", "b", "--factor", "3"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(ok.factor, 3.0);
        assert_eq!(ok.noise_floor_ms, NOISE_FLOOR_MS);
        let floored = parse_args(
            [
                "--baseline",
                "a",
                "--current",
                "b",
                "--noise-floor",
                "0.001",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(floored.noise_floor_ms, 0.001);
        assert!(parse_args(
            ["--baseline", "a", "--current", "b", "--noise-floor", "-1"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
        assert!(parse_args(["--baseline", "a"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(
            ["--baseline", "a", "--current", "b", "--factor", "0.5"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }
}
