//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --help                     # full usage/flag summary
//! repro --list                     # experiment ids with descriptions
//! repro all                        # run everything (the EXPERIMENTS.md source)
//! repro all --jobs 8               # same bytes, computed on 8 workers
//! repro fig10 table3               # run a selection
//! repro fig6 --seed 7              # override the seed
//! repro data --scale 16            # 16× the heavy-experiment workloads
//! repro fleet --fleet-jobs 100000  # shrink the open-system fleet run
//! repro all --timings-json t.json  # machine-readable timing dump
//! repro storm --trace t.json       # flight-recorder trace (Perfetto)
//! ```
//!
//! The report goes to stdout and is byte-identical for every `--jobs`
//! value; the per-experiment wall-time table goes to stderr so it never
//! perturbs golden-output diffs. `--trace` additionally writes Chrome
//! trace-event JSON plus a compact journal, both byte-identical across
//! reruns and worker counts (docs/perfetto.md).

use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args = match acme_bench::parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", acme_bench::USAGE);
            return ExitCode::FAILURE;
        }
    };

    if args.help {
        print!("{}", acme_bench::USAGE);
        return ExitCode::SUCCESS;
    }

    if args.list_only || args.ids.is_empty() {
        println!("available experiments (run with `repro all` or `repro <id>...`):");
        for e in &acme::experiments::all() {
            println!("  {:<10} {}", e.id, e.title);
            println!("  {:<10}   {}", "", e.desc);
        }
        return ExitCode::SUCCESS;
    }

    let selection = match acme::experiments::select(&args.ids) {
        Ok(selection) => selection,
        Err(unknown) => {
            for id in unknown {
                eprintln!("error: unknown experiment id `{id}` (try --list)");
            }
            return ExitCode::FAILURE;
        }
    };

    // The policy lab validates its whole sweep grid up front: a degenerate
    // configuration (zero budgets, inverted thresholds, non-finite
    // probabilities) is a usage error, not a panic 40 cells into the run.
    if selection.iter().any(|e| e.id == "policylab") {
        if let Err(e) = acme::experiments::validate_policylab(args.scale) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Same pre-flight for the netstorm ablation: a degenerate fat tree
    // (zero-capacity links, bad radix, out-of-range oversubscription) or
    // storm surface is a usage error before any flow is routed.
    if selection.iter().any(|e| e.id == "netstorm") {
        if let Err(e) = acme::experiments::validate_netstorm(args.scale) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    let requested_jobs = args.jobs.unwrap_or_else(acme::experiments::default_jobs);
    let jobs = requested_jobs.min(selection.len().max(1));
    // Sharded experiments fan out internally on the same budget, so a
    // small selection still uses every requested worker.
    acme::experiments::set_workers(requested_jobs);
    let params = acme::experiments::RunParams::with_scale(args.seed, args.scale)
        .with_fleet_jobs(args.fleet_jobs)
        .with_trace(args.trace.is_some());
    let started = Instant::now();
    let runs = acme::experiments::run_selection(&selection, params, jobs);
    let elapsed = started.elapsed();

    print!("{}", acme_bench::render_report(args.seed, &runs));
    eprint!("{}", acme_bench::render_timings(&runs, jobs, elapsed));

    if let Some(path) = &args.trace {
        let procs = acme_bench::trace_processes(&runs);
        if procs.is_empty() {
            eprintln!(
                "note: no experiment in this selection is instrumented; \
                 the trace files hold only the (empty) envelope"
            );
        }
        let journal = acme_bench::journal_path(path);
        for (p, contents) in [
            (path.clone(), acme_obs::chrome_trace_json(&procs)),
            (journal, acme_obs::journal(&procs)),
        ] {
            if let Err(e) = std::fs::write(&p, contents) {
                eprintln!("error: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.timings_json {
        let json = acme_bench::render_timings_json(
            args.seed,
            &runs,
            jobs,
            elapsed,
            acme_bench::peak_rss_bytes(),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if acme_bench::any_failed(&runs) {
        let failed: Vec<&str> = runs.iter().filter(|r| r.failed).map(|r| r.id).collect();
        eprintln!(
            "error: {} experiment(s) FAILED: {}",
            failed.len(),
            failed.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
