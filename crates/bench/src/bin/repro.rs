//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --list            # show every experiment id
//! repro all               # run everything (the EXPERIMENTS.md source)
//! repro fig10 table3      # run a selection
//! repro fig6 --seed 7     # override the seed
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let (ids, seed, list_only) = match acme_bench::parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro [--list] [--seed N] [all | <id>...]");
            return ExitCode::FAILURE;
        }
    };

    let registry = acme::experiments::all();
    if list_only || ids.is_empty() {
        println!("available experiments (run with `repro all` or `repro <id>...`):");
        for e in &registry {
            println!("  {:<8} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<String> = if ids.iter().any(|i| i == "all") {
        registry.iter().map(|e| e.id.to_string()).collect()
    } else {
        ids
    };

    println!("# Acme reproduction — seed {seed}\n");
    let mut failed = false;
    for id in &selected {
        match acme::experiments::run(id, seed) {
            Some(output) => println!("{output}"),
            None => {
                eprintln!("error: unknown experiment id `{id}` (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
