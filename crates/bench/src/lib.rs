//! `acme-bench`: the experiment harness and performance benchmarks.
//!
//! * The `repro` binary regenerates every table and figure:
//!
//!   ```text
//!   cargo run -p acme-bench --bin repro -- all
//!   cargo run -p acme-bench --bin repro -- fig10 table3 --seed 7
//!   cargo run -p acme-bench --bin repro -- --list
//!   ```
//!
//! * `cargo bench -p acme-bench` runs the Criterion suites:
//!   `kernel` (event queue, RNG, distributions, trace generation) and
//!   `systems` (scheduler, diagnosis pipeline, evaluation coordinator,
//!   checkpoint model, step timelines).

#![warn(missing_docs)]

/// Default seed used by the harness when none is given.
pub const DEFAULT_SEED: u64 = 42;

/// Parse harness arguments: experiment ids plus an optional `--seed N`.
/// Returns `(ids, seed, list_only)`.
pub fn parse_args<I: IntoIterator<Item = String>>(
    args: I,
) -> Result<(Vec<String>, u64, bool), String> {
    let mut ids = Vec::new();
    let mut seed = DEFAULT_SEED;
    let mut list_only = false;
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--list" => list_only = true,
            _ if a.starts_with("--") => return Err(format!("unknown flag: {a}")),
            _ => ids.push(a),
        }
    }
    Ok((ids, seed, list_only))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_ids_and_seed() {
        let (ids, seed, list) = parse_args(v(&["fig10", "table3", "--seed", "7"])).unwrap();
        assert_eq!(ids, vec!["fig10", "table3"]);
        assert_eq!(seed, 7);
        assert!(!list);
    }

    #[test]
    fn defaults() {
        let (ids, seed, list) = parse_args(v(&[])).unwrap();
        assert!(ids.is_empty());
        assert_eq!(seed, DEFAULT_SEED);
        assert!(!list);
    }

    #[test]
    fn list_flag() {
        let (_, _, list) = parse_args(v(&["--list"])).unwrap();
        assert!(list);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(v(&["--seed"])).is_err());
        assert!(parse_args(v(&["--seed", "x"])).is_err());
        assert!(parse_args(v(&["--bogus"])).is_err());
    }
}
