//! `acme-bench`: the experiment harness and performance benchmarks.
//!
//! * The `repro` binary regenerates every table and figure:
//!
//!   ```text
//!   cargo run -p acme-bench --bin repro -- all
//!   cargo run -p acme-bench --bin repro -- all --jobs 8
//!   cargo run -p acme-bench --bin repro -- fig10 table3 --seed 7
//!   cargo run -p acme-bench --bin repro -- all --timings-json timings.json
//!   cargo run -p acme-bench --bin repro -- --list
//!   ```
//!
//!   Experiments run across `--jobs` worker threads (default: all cores).
//!   stdout is **byte-identical for every jobs value** — results are
//!   buffered and emitted in selection order — so the parallel run is safe
//!   to diff against golden output. The per-experiment wall-time report
//!   goes to stderr, and `--timings-json PATH` writes a machine-readable
//!   dump for the bench trajectory (`BENCH_repro_all.json`).
//!
//! * `cargo bench -p acme-bench` runs the Criterion suites:
//!   `kernel` (event queue, RNG, distributions, trace generation),
//!   `systems` (scheduler, diagnosis pipeline, evaluation coordinator,
//!   checkpoint model, step timelines) and `repro_all` (the end-to-end
//!   harness itself, sequential vs parallel).

#![warn(missing_docs)]

use acme::experiments::ExperimentRun;

/// Default seed used by the harness when none is given.
pub const DEFAULT_SEED: u64 = 42;

/// Parsed `repro` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Experiment ids to run (possibly containing `all`).
    pub ids: Vec<String>,
    /// Seed shared by every experiment.
    pub seed: u64,
    /// Just list the registry and exit.
    pub list_only: bool,
    /// Worker threads; `None` means one per available core.
    pub jobs: Option<usize>,
    /// Workload multiplier for the heavy experiments (≥ 1).
    pub scale: u32,
    /// Arrival count for the open-system `fleet` experiment.
    pub fleet_jobs: u64,
    /// Write a machine-readable timing dump to this path.
    pub timings_json: Option<String>,
    /// Record a flight-recorder trace: Chrome trace-event JSON at this
    /// path, plus the compact journal next to it ([`journal_path`]).
    pub trace: Option<String>,
    /// Just print the usage summary and exit.
    pub help: bool,
}

/// The `repro --help` text. One place, so the binary's help, its
/// flag-error hint, and the doc tests can never drift apart.
pub const USAGE: &str = "\
repro — regenerate the paper's tables and figures

usage: repro [OPTIONS] [all | <id>...]

  all                  run every experiment, in registry order
  <id>...              run a selection (ids from --list)

options:
  --list               list every experiment id with a one-line description
  --seed N             simulation seed (default 42)
  --jobs N             worker threads (default: one per core); stdout is
                       byte-identical for every value
  --scale N            multiply the heavy-experiment workloads (default 1)
  --fleet-jobs N       arrival count for the open-system fleet experiment
                       (default 1000000)
  --timings-json PATH  write a machine-readable dump: per-experiment wall
                       time, event-queue counters, per-shard timings, RSS
  --trace PATH         flight-recorder trace of the instrumented
                       experiments: Chrome trace-event JSON at PATH (open
                       in Perfetto), compact journal at PATH's `.journal`
                       sibling; both deterministic for (seed, scale)
  --help               print this summary

The report goes to stdout and is byte-identical for every --jobs value;
the wall-time table goes to stderr so golden diffs never see it.
";

/// Parse harness arguments: experiment ids plus `--seed N`, `--jobs N`,
/// `--scale N`, `--fleet-jobs N`, `--timings-json PATH`, `--trace PATH`,
/// `--list`, and `--help`.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<HarnessArgs, String> {
    let mut parsed = HarnessArgs {
        ids: Vec::new(),
        seed: DEFAULT_SEED,
        list_only: false,
        jobs: None,
        scale: 1,
        fleet_jobs: acme::experiments::DEFAULT_FLEET_JOBS,
        timings_json: None,
        trace: None,
        help: false,
    };
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                parsed.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--jobs" => {
                let v = iter.next().ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad job count: {v}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                parsed.jobs = Some(n);
            }
            "--scale" => {
                let v = iter.next().ok_or("--scale needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if n == 0 {
                    return Err("--scale must be at least 1".into());
                }
                parsed.scale = n;
            }
            "--fleet-jobs" => {
                let v = iter.next().ok_or("--fleet-jobs needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad fleet job count: {v}"))?;
                if n == 0 {
                    return Err("--fleet-jobs must be at least 1".into());
                }
                parsed.fleet_jobs = n;
            }
            "--timings-json" => {
                let v = iter.next().ok_or("--timings-json needs a path")?;
                parsed.timings_json = Some(v);
            }
            "--trace" => {
                let v = iter.next().ok_or("--trace needs a path")?;
                parsed.trace = Some(v);
            }
            "--list" => parsed.list_only = true,
            "--help" | "-h" => parsed.help = true,
            _ if a.starts_with("--") => return Err(format!("unknown flag: {a}")),
            _ => parsed.ids.push(a),
        }
    }
    Ok(parsed)
}

/// Whether any run in the batch failed (panicked experiment): the harness
/// exits nonzero when this is true, so CI catches a broken artifact even
/// though the rest of the report still renders.
pub fn any_failed(runs: &[ExperimentRun]) -> bool {
    runs.iter().any(|r| r.failed)
}

/// The exact stdout of a harness run: the seed header followed by every
/// experiment's report, in selection order. Shared by the `repro` binary
/// and the determinism tests so what is tested is what ships.
pub fn render_report(seed: u64, runs: &[ExperimentRun]) -> String {
    let mut out =
        String::with_capacity(64 + runs.iter().map(|r| r.output.len() + 1).sum::<usize>());
    out.push_str(&format!("# Acme reproduction — seed {seed}\n\n"));
    for run in runs {
        out.push_str(&run.output);
        out.push('\n');
    }
    out
}

/// The stderr wall-time report: one line per experiment (slowest first),
/// then totals. `jobs` is the worker count actually used.
pub fn render_timings(runs: &[ExperimentRun], jobs: usize, elapsed: std::time::Duration) -> String {
    let mut by_cost: Vec<&ExperimentRun> = runs.iter().collect();
    by_cost.sort_by(|a, b| b.wall.cmp(&a.wall).then(a.id.cmp(b.id)));
    let cpu_total: std::time::Duration = runs.iter().map(|r| r.wall).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "# timings — {} experiment(s), {jobs} worker(s)\n",
        runs.len()
    ));
    for run in by_cost {
        out.push_str(&format!(
            "  {:<8} {:>9.3} ms  {}\n",
            run.id,
            run.wall.as_secs_f64() * 1e3,
            run.title
        ));
    }
    out.push_str(&format!(
        "  total experiment cpu {:>9.3} ms, wall {:>9.3} ms\n",
        cpu_total.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3
    ));
    out
}

/// Peak resident set size of this process in bytes, read from the
/// `VmHWM` line of `/proc/self/status`. Returns `0` where that interface
/// does not exist (non-Linux) — consumers treat `0` as "unavailable",
/// never as "used no memory".
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                let kb = line.strip_prefix("VmHWM:")?.trim().strip_suffix("kB")?;
                kb.trim().parse::<u64>().ok().map(|kb| kb * 1024)
            })
        })
        .unwrap_or(0)
}

/// Group each run's flight-recorder chunks into one Perfetto "process"
/// per experiment, in selection order; runs that recorded nothing are
/// skipped. Chunks are already in shard order (the shard pool re-deposits
/// worker chunks on the calling thread in shard order), so the exported
/// bytes are a pure function of (selection, seed, scale) — independent of
/// `--jobs`.
pub fn trace_processes(runs: &[ExperimentRun]) -> Vec<acme_obs::TraceProcess> {
    runs.iter()
        .filter(|r| !r.trace.is_empty())
        .map(|r| acme_obs::TraceProcess {
            name: r.id.to_owned(),
            chunks: r.trace.clone(),
        })
        .collect()
}

/// Where the compact journal goes for a `--trace PATH` run: `t.json` →
/// `t.journal`, anything without a `.json` extension gets `.journal`
/// appended.
pub fn journal_path(trace_path: &str) -> String {
    match trace_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.journal"),
        None => format!("{trace_path}.journal"),
    }
}

/// One parsed policy-sweep cell timing: the `policylab` experiment labels
/// its shards `cell/{policy}/s{seed}/i{intensity}`, and the timings dump
/// breaks those back into columns so the bench trajectory can track
/// per-cell cost along each sweep axis. Policy labels may themselves
/// contain `/` (e.g. `full + Young/Daly ckpt`), so the label is parsed
/// from the *right*.
pub fn parse_sweep_label(label: &str) -> Option<(&str, u64, u32)> {
    let rest = label.strip_prefix("cell/")?;
    let (rest, intensity) = rest.rsplit_once("/i")?;
    let (policy, seed) = rest.rsplit_once("/s")?;
    Some((policy, seed.parse().ok()?, intensity.parse().ok()?))
}

/// Machine-readable timing dump (hand-rolled JSON; no serde in-tree).
/// Schema: `{seed, jobs, wall_ms, peak_rss_bytes, experiments:
/// [{id, ms, events_processed, max_queue_depth, flows_routed,
/// max_link_utilization}, ...], shards:
/// [{experiment, shard, ms}, ...], sweep:
/// [{experiment, policy, seed, intensity, ms}, ...]}` with experiments in
/// selection order and shards in per-experiment execution order. The flat
/// `shards` and `sweep` sections come *after* the experiments array, so
/// scanners that stop at the array's closing bracket (the `bench_guard`
/// parser) are unaffected; their objects deliberately carry no `id` key.
/// The `sweep` section re-exposes the policy-sweep cell shards (labels
/// `cell/...`, parsed by [`parse_sweep_label`]) with the sweep axes split
/// into columns; it is empty unless the selection ran `policylab`.
/// `events_processed` and `max_queue_depth` come from the sim-core
/// event-queue counters (`acme_sim_core::stats`): events popped and peak
/// pending depth across every queue the experiment dropped — 0 for
/// experiments that never touch the event queue. `flows_routed` and
/// `max_link_utilization` come from the network-substrate counters
/// (`acme_cluster::net::stats`): flows pushed through the fat-tree
/// scheduler and the busiest link's time-averaged utilization — 0 for
/// experiments that never route traffic. `peak_rss` is the
/// caller's [`peak_rss_bytes`] reading, taken as a parameter so the
/// renderer stays a pure function.
pub fn render_timings_json(
    seed: u64,
    runs: &[ExperimentRun],
    jobs: usize,
    elapsed: std::time::Duration,
    peak_rss: u64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!(
        "  \"wall_ms\": {:.3},\n",
        elapsed.as_secs_f64() * 1e3
    ));
    out.push_str(&format!("  \"peak_rss_bytes\": {peak_rss},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ms\": {:.3}, \"events_processed\": {}, \
             \"max_queue_depth\": {}, \"flows_routed\": {}, \
             \"max_link_utilization\": {:.3}}}{comma}\n",
            run.id,
            run.wall.as_secs_f64() * 1e3,
            run.queue.pops,
            run.queue.max_depth,
            run.net.flows_routed,
            run.net.max_link_utilization
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"shards\": [\n");
    let shard_rows: Vec<(&str, &acme::experiments::ShardTiming)> = runs
        .iter()
        .flat_map(|r| r.shards.iter().map(move |s| (r.id, s)))
        .collect();
    for (i, (id, s)) in shard_rows.iter().enumerate() {
        let comma = if i + 1 == shard_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"experiment\": \"{id}\", \"shard\": \"{}\", \"ms\": {:.3}}}{comma}\n",
            s.label,
            s.wall.as_secs_f64() * 1e3
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sweep\": [\n");
    let sweep_rows: Vec<(&str, &str, u64, u32, f64)> = shard_rows
        .iter()
        .filter_map(|(id, s)| {
            parse_sweep_label(&s.label).map(|(policy, seed, intensity)| {
                (*id, policy, seed, intensity, s.wall.as_secs_f64() * 1e3)
            })
        })
        .collect();
    for (i, (id, policy, cell_seed, intensity, ms)) in sweep_rows.iter().enumerate() {
        let comma = if i + 1 == sweep_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"experiment\": \"{id}\", \"policy\": \"{policy}\", \
             \"seed\": {cell_seed}, \"intensity\": {intensity}, \"ms\": {ms:.3}}}{comma}\n",
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn v(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    fn fake_run(id: &'static str, ms: u64) -> ExperimentRun {
        ExperimentRun {
            id,
            title: "t",
            output: format!("### {id} — t\nrow"),
            wall: Duration::from_millis(ms),
            failed: false,
            shards: Vec::new(),
            trace: Vec::new(),
            queue: acme_sim_core::stats::QueueStats::ZERO,
            net: acme_cluster::net::stats::NetStats::ZERO,
        }
    }

    #[test]
    fn parses_ids_and_seed() {
        let p = parse_args(v(&["fig10", "table3", "--seed", "7"])).unwrap();
        assert_eq!(p.ids, vec!["fig10", "table3"]);
        assert_eq!(p.seed, 7);
        assert!(!p.list_only);
        assert_eq!(p.jobs, None);
        assert_eq!(p.timings_json, None);
    }

    #[test]
    fn defaults() {
        let p = parse_args(v(&[])).unwrap();
        assert!(p.ids.is_empty());
        assert_eq!(p.seed, DEFAULT_SEED);
        assert!(!p.list_only);
    }

    #[test]
    fn list_flag() {
        assert!(parse_args(v(&["--list"])).unwrap().list_only);
    }

    #[test]
    fn jobs_and_timings_json() {
        let p = parse_args(v(&["all", "--jobs", "4", "--timings-json", "t.json"])).unwrap();
        assert_eq!(p.jobs, Some(4));
        assert_eq!(p.timings_json.as_deref(), Some("t.json"));
        assert_eq!(p.scale, 1);
        assert_eq!(p.fleet_jobs, acme::experiments::DEFAULT_FLEET_JOBS);
        assert_eq!(p.trace, None);
        assert!(!p.help);
    }

    #[test]
    fn trace_flag() {
        let p = parse_args(v(&["storm", "--trace", "t.json"])).unwrap();
        assert_eq!(p.trace.as_deref(), Some("t.json"));
        assert_eq!(p.ids, vec!["storm"]);
    }

    #[test]
    fn help_flag_and_usage_text() {
        assert!(parse_args(v(&["--help"])).unwrap().help);
        assert!(parse_args(v(&["-h"])).unwrap().help);
        // The summary documents every flag parse_args accepts.
        for flag in [
            "--list",
            "--seed",
            "--jobs",
            "--scale",
            "--fleet-jobs",
            "--timings-json",
            "--trace",
            "--help",
        ] {
            assert!(USAGE.contains(flag), "USAGE is missing {flag}");
        }
    }

    #[test]
    fn journal_path_replaces_json_extension() {
        assert_eq!(journal_path("t.json"), "t.journal");
        assert_eq!(journal_path("out/trace.json"), "out/trace.journal");
        assert_eq!(journal_path("trace"), "trace.journal");
    }

    #[test]
    fn trace_processes_skip_untraced_runs() {
        let mut traced = fake_run("storm", 2);
        let mut r = acme_obs::Recorder::new();
        acme_obs::Rec::on(&mut r).instant(1.0, "x", "", &[]);
        traced.trace.push(r.into_chunk("arm/full"));
        let runs = [fake_run("fig2", 1), traced];
        let procs = trace_processes(&runs);
        assert_eq!(procs.len(), 1);
        assert_eq!(procs[0].name, "storm");
        assert_eq!(procs[0].chunks.len(), 1);
        assert_eq!(procs[0].chunks[0].label, "arm/full");
    }

    #[test]
    fn fleet_jobs_flag() {
        let p = parse_args(v(&["fleet", "--fleet-jobs", "100000"])).unwrap();
        assert_eq!(p.fleet_jobs, 100_000);
    }

    #[test]
    fn scale_flag() {
        let p = parse_args(v(&["data", "--scale", "16"])).unwrap();
        assert_eq!(p.scale, 16);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(v(&["--seed"])).is_err());
        assert!(parse_args(v(&["--seed", "x"])).is_err());
        assert!(parse_args(v(&["--bogus"])).is_err());
        assert!(parse_args(v(&["--jobs"])).is_err());
        assert!(parse_args(v(&["--jobs", "x"])).is_err());
        assert!(parse_args(v(&["--jobs", "0"])).is_err());
        assert!(parse_args(v(&["--scale"])).is_err());
        assert!(parse_args(v(&["--scale", "0"])).is_err());
        assert!(parse_args(v(&["--scale", "x"])).is_err());
        assert!(parse_args(v(&["--fleet-jobs"])).is_err());
        assert!(parse_args(v(&["--fleet-jobs", "0"])).is_err());
        assert!(parse_args(v(&["--fleet-jobs", "x"])).is_err());
        assert!(parse_args(v(&["--timings-json"])).is_err());
    }

    #[test]
    fn report_has_header_and_selection_order() {
        let runs = [fake_run("b", 1), fake_run("a", 2)];
        let report = render_report(9, &runs);
        assert!(report.starts_with("# Acme reproduction — seed 9\n\n"));
        let b_pos = report.find("### b").unwrap();
        let a_pos = report.find("### a").unwrap();
        assert!(b_pos < a_pos, "report must keep selection order");
    }

    #[test]
    fn timings_sorted_slowest_first() {
        let runs = [fake_run("fast", 1), fake_run("slow", 50)];
        let t = render_timings(&runs, 2, Duration::from_millis(51));
        let slow_pos = t.find("slow").unwrap();
        let fast_pos = t.find("fast").unwrap();
        assert!(slow_pos < fast_pos);
        assert!(t.contains("2 worker(s)"));
    }

    #[test]
    fn any_failed_flags_a_failed_run() {
        let mut runs = [fake_run("a", 1), fake_run("b", 1)];
        assert!(!any_failed(&runs));
        runs[1].failed = true;
        assert!(any_failed(&runs));
        assert!(!any_failed(&[]));
    }

    #[test]
    fn timings_json_shape() {
        let mut runs = [fake_run("x", 3), fake_run("y", 4)];
        runs[1].queue = acme_sim_core::stats::QueueStats {
            schedules: 12,
            pops: 11,
            resizes: 1,
            max_depth: 5,
        };
        runs[1].net = acme_cluster::net::stats::NetStats {
            flows_routed: 64,
            max_link_utilization: 0.875,
        };
        let j = render_timings_json(42, &runs, 8, Duration::from_millis(7), 12_345_678);
        assert!(j.contains("\"seed\": 42"));
        assert!(j.contains("\"jobs\": 8"));
        // RSS comes before the experiments array, after the scalar header
        // fields, so `bench_guard`'s id scanner never sees it.
        assert!(j.contains("\"peak_rss_bytes\": 12345678,\n"));
        assert!(j.find("\"peak_rss_bytes\"").unwrap() < j.find("\"experiments\"").unwrap());
        // Queue and network counters ride along per experiment (0 when the
        // experiment never touched the event queue or the fat tree).
        assert!(j.contains(
            "{\"id\": \"x\", \"ms\": 3.000, \"events_processed\": 0, \"max_queue_depth\": 0, \
             \"flows_routed\": 0, \"max_link_utilization\": 0.000},"
        ));
        assert!(j.contains(
            "{\"id\": \"y\", \"ms\": 4.000, \"events_processed\": 11, \"max_queue_depth\": 5, \
             \"flows_routed\": 64, \"max_link_utilization\": 0.875}\n"
        ));
        // Unsharded runs still emit the (empty) shards and sweep sections.
        assert!(j.contains("\"shards\": [\n  ]"));
        assert!(j.contains("\"sweep\": [\n  ]"));
        // Crude but effective: balanced braces/brackets, trailing newline.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn timings_json_reports_shards_after_experiments() {
        let mut sharded = fake_run("diag", 9);
        sharded.shards = vec![
            acme::experiments::ShardTiming {
                label: "nccl/0".to_owned(),
                wall: Duration::from_millis(2),
            },
            acme::experiments::ShardTiming {
                label: "nccl/1".to_owned(),
                wall: Duration::from_millis(3),
            },
        ];
        let runs = [fake_run("x", 3), sharded];
        let j = render_timings_json(7, &runs, 2, Duration::from_millis(12), 0);
        assert!(j.contains("{\"experiment\": \"diag\", \"shard\": \"nccl/0\", \"ms\": 2.000},"));
        assert!(j.contains("{\"experiment\": \"diag\", \"shard\": \"nccl/1\", \"ms\": 3.000}\n"));
        // Shard objects live after the experiments array (and have no `id`
        // key), so id-scanning consumers never see them.
        let exp_end = j.find("],").unwrap();
        assert!(j.find("\"shard\"").unwrap() > exp_end);
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sweep_labels_round_trip_even_with_slashes_in_policy_names() {
        assert_eq!(
            parse_sweep_label("cell/full + Young/Daly ckpt/s42/i3"),
            Some(("full + Young/Daly ckpt", 42, 3))
        );
        assert_eq!(
            parse_sweep_label("cell/naive always-restart/s7/i1"),
            Some(("naive always-restart", 7, 1))
        );
        assert_eq!(parse_sweep_label("arm/full orchestrator (spares)"), None);
        assert_eq!(parse_sweep_label("cell/broken/sX/i1"), None);
    }

    #[test]
    fn timings_json_breaks_sweep_cells_into_columns() {
        let mut sweep = fake_run("policylab", 20);
        sweep.shards = vec![
            acme::experiments::ShardTiming {
                label: "cell/full + Young/Daly ckpt/s42/i2".to_owned(),
                wall: Duration::from_millis(4),
            },
            acme::experiments::ShardTiming {
                label: "cell/retry + backoff/s7/i1".to_owned(),
                wall: Duration::from_millis(5),
            },
        ];
        let runs = [sweep];
        let j = render_timings_json(42, &runs, 2, Duration::from_millis(21), 0);
        // Cells appear verbatim in the shards section…
        assert!(j.contains("\"shard\": \"cell/full + Young/Daly ckpt/s42/i2\""));
        // …and parsed into sweep-axis columns in the sweep section.
        assert!(j.contains(
            "{\"experiment\": \"policylab\", \"policy\": \"full + Young/Daly ckpt\", \
             \"seed\": 42, \"intensity\": 2, \"ms\": 4.000},"
        ));
        assert!(j.contains(
            "{\"experiment\": \"policylab\", \"policy\": \"retry + backoff\", \
             \"seed\": 7, \"intensity\": 1, \"ms\": 5.000}\n"
        ));
        assert!(j.find("\"sweep\"").unwrap() > j.find("\"shards\"").unwrap());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn peak_rss_reads_vmhwm_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // The test process has certainly touched a few MiB.
            assert!(rss > 1024 * 1024, "VmHWM reported {rss} bytes");
            assert_eq!(rss % 1024, 0, "VmHWM is reported in kB");
        }
    }
}
