//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values over a wide dynamic range (no NaN/∞ — the real crate
    /// generates those too, but every caller here filters them anyway).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let magnitude = (rng.unit_f64() * 2.0 - 1.0) * 1e12;
        magnitude * rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_generate() {
        let mut rng = TestRng::from_name("arbitrary-tests");
        let mut saw_true = false;
        let mut saw_false = false;
        for _ in 0..100 {
            let _: u64 = any::<u64>().generate(&mut rng);
            let _: u32 = any::<u32>().generate(&mut rng);
            let b = any::<bool>().generate(&mut rng);
            saw_true |= b;
            saw_false |= !b;
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
        assert!(saw_true && saw_false);
    }
}
