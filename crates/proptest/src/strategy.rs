//! The [`Strategy`] trait and the built-in input generators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating test inputs of type `Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// `generate` produces the final value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}

signed_range_strategies!(i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Draw over the closed interval by occasionally emitting the exact
        // upper endpoint, which a half-open draw would never produce.
        if rng.next_u64() % 64 == 0 {
            hi
        } else {
            lo + rng.unit_f64() * (hi - lo)
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($n:ident $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// One parsed unit of a regex-lite pattern: what to emit, and how often.
#[derive(Debug, Clone)]
struct PatternAtom {
    /// `None` means "any character" (`.`); otherwise the allowed set.
    class: Option<Vec<char>>,
    min: usize,
    max: usize,
}

/// Characters `.` draws from: printable ASCII plus a few multi-byte
/// characters so char-count vs byte-count confusions surface in tests.
fn any_char_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    pool.extend(['\t', 'é', 'ß', '→', '世']);
    pool
}

/// Parse the supported regex subset: literal chars, `.`, `[abc]` classes,
/// each optionally followed by `{m,n}`, `{n}`, `*`, `+` or `?`.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '.' => {
                i += 1;
                None
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let set: Vec<char> = chars[i + 1..close].to_vec();
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Some(set)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Some(vec![c])
            }
            c => {
                i += 1;
                Some(vec![c])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition lower bound"),
                        hi.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        atoms.push(PatternAtom { class, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    /// Treat the string as a regex-lite pattern and generate a match.
    fn generate(&self, rng: &mut TestRng) -> String {
        let pool = any_char_pool();
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.below(atom.min as u64, atom.max as u64 + 1) as usize;
            for _ in 0..n {
                let c = match &atom.class {
                    Some(set) => set[rng.below(0, set.len() as u64) as usize],
                    None => pool[rng.below(0, pool.len() as u64) as usize],
                };
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn int_ranges_cover_bounds() {
        let mut r = rng();
        let mut saw_lo = false;
        for _ in 0..500 {
            let x = (0u32..3).generate(&mut r);
            assert!(x < 3);
            saw_lo |= x == 0;
        }
        assert!(saw_lo);
        for _ in 0..100 {
            let x = (1u64..=2).generate(&mut r);
            assert!((1..=2).contains(&x));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut r = rng();
        for _ in 0..64 {
            let _ = (1u64..u64::MAX).generate(&mut r);
            let _ = (0u64..=u64::MAX).generate(&mut r);
        }
    }

    #[test]
    fn f64_inclusive_hits_endpoint() {
        let mut r = rng();
        let mut hit_hi = false;
        for _ in 0..1000 {
            let x = (0.0f64..=1.0).generate(&mut r);
            assert!((0.0..=1.0).contains(&x));
            hit_hi |= x == 1.0;
        }
        assert!(hit_hi, "inclusive range never produced its upper endpoint");
    }

    #[test]
    fn map_and_just() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
        assert_eq!(Just("x").generate(&mut r), "x");
    }

    #[test]
    fn pattern_literals_classes_and_counts() {
        let mut r = rng();
        assert_eq!("abc".generate(&mut r), "abc");
        for _ in 0..100 {
            let s = "[xy]{3}".generate(&mut r);
            assert_eq!(s.chars().count(), 3);
            assert!(s.chars().all(|c| c == 'x' || c == 'y'));
        }
        let s = "a\\.b".generate(&mut r);
        assert_eq!(s, "a.b");
    }

    #[test]
    fn quantifiers() {
        let mut r = rng();
        for _ in 0..100 {
            assert!("x?".generate(&mut r).len() <= 1);
            assert!(!"[ab]+".generate(&mut r).is_empty());
            let _ = ".*".generate(&mut r);
        }
    }
}
