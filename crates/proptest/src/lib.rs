//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free re-implementation of the `proptest` surface its
//! test suites actually use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros;
//! * [`strategy::Strategy`] with `prop_map`, numeric-range strategies,
//!   tuple strategies, regex-lite string strategies, and
//!   [`collection::vec`];
//! * [`arbitrary::any`] for the primitive types the tests draw.
//!
//! Semantics intentionally kept from the real crate: inputs are drawn
//! deterministically (seeded from the test name, so failures reproduce),
//! `prop_assume!` rejects a case without failing, and `prop_assert*` report
//! the failing condition. Shrinking is **not** implemented — a failing case
//! prints its inputs via the assertion message instead.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    /// Alias of this crate, so `prop::collection::vec(..)` resolves exactly
    /// as it does with the real dependency.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Define deterministic random-input tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(8).saturating_add(64);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $p = $crate::strategy::Strategy::generate(&$s, &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest `{}` failed after {} case(s): {}",
                            stringify!($name),
                            accepted + 1,
                            msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Discard the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0.5f64..=1.5, n in 1usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=1.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(xs in prop::collection::vec(0u32..100, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_assume((a, b) in (0u64..50, 0u64..50)) {
            prop_assume!(a != b);
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn regex_lite_class(s in "[abc]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()), "bad len: {s:?}");
            prop_assert!(s.chars().all(|c| "abc".contains(c)));
        }

        #[test]
        fn regex_lite_dot(s in ".{0,16}") {
            prop_assert!(s.chars().count() <= 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_accepted(x in crate::strategy::Just(41u32)) {
            prop_assert_eq!(x + 1, 42);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = crate::collection::vec(crate::arbitrary::any::<u64>(), 1..20);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
