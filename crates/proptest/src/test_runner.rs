//! Case execution support: the deterministic RNG, per-suite configuration,
//! and the error type `prop_assert*` / `prop_assume!` return through.

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; the message explains what broke.
    Fail(String),
    /// The case was discarded by `prop_assume!` and should not count.
    Reject,
}

/// Suite configuration, settable via `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 so the whole workspace's
    /// property suites stay cheap in CI; raise per-suite where it matters.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64: tiny, fast, and plenty uniform for input generation.
///
/// Seeded from the test name, so every run of a given test draws the same
/// input sequence — failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, folded into a non-zero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never the all-zero state
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`; `lo` when the range is empty.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bounds() {
        let mut r = TestRng::from_name("below");
        for _ in 0..1000 {
            let x = r.below(5, 17);
            assert!((5..17).contains(&x));
        }
        assert_eq!(r.below(9, 9), 9);
    }
}
