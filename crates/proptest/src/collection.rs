//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.below(self.size.min as u64, self.size.max as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length is
/// drawn from `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_all_size_forms() {
        let mut rng = TestRng::from_name("collection-tests");
        for _ in 0..200 {
            assert_eq!(vec(0u32..5, 3).generate(&mut rng).len(), 3);
            let a = vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&a.len()));
            let b = vec(0u32..5, 2..=2).generate(&mut rng);
            assert_eq!(b.len(), 2);
        }
    }

    #[test]
    fn elements_come_from_inner_strategy() {
        let mut rng = TestRng::from_name("collection-elems");
        let xs = vec(10u64..20, 50).generate(&mut rng);
        assert!(xs.iter().all(|&x| (10..20).contains(&x)));
    }
}
