//! The paper's headline numbers, asserted end to end through public APIs.
//! Each test names the claim it guards; EXPERIMENTS.md cites these.

use acme_cluster::{ClusterSpec, SharedStorage};
use acme_evaluation::benchmarks::registry;
use acme_evaluation::coordinator::{run as run_eval, Scheduler};
use acme_failure::taxonomy::{FailureCategory, FailureReason};
use acme_failure::{DiagnosisPipeline, FailureInjector, LogBundle};
use acme_sim_core::dist::Categorical;
use acme_sim_core::SimRng;
use acme_training::checkpoint::{CheckpointEngine, CheckpointScenario};
use acme_training::{ModelConfig, StepTimeline, Strategy};
use acme_workload::{TraceStats, WorkloadGenerator};

/// §1/§3.2 — "pretraining jobs only account for 3.2% of the total job count
/// but consume 94.0% of the whole compute resource in Kalos ... evaluation
/// jobs, despite constituting 92.9% of all jobs, only utilize 0.8%".
#[test]
fn headline_kalos_resource_imbalance() {
    let mut rng = SimRng::new(1);
    let jobs = WorkloadGenerator::kalos().generate(&mut rng, 183.0, 0).jobs;
    let stats = TraceStats::new(&jobs);
    let shares = stats.type_shares();
    let get = |ty| {
        shares
            .iter()
            .find(|&&(t, _, _)| t == ty)
            .map(|&(_, c, g)| (c, g))
            .unwrap()
    };
    let (pre_count, pre_time) = get(acme_workload::JobType::Pretrain);
    let (eval_count, eval_time) = get(acme_workload::JobType::Evaluation);
    assert!(
        (pre_count - 0.032).abs() < 0.006,
        "pretrain count {pre_count:.3}"
    );
    assert!(
        (pre_time - 0.94).abs() < 0.05,
        "pretrain GPU time {pre_time:.3}"
    );
    assert!(
        (eval_count - 0.929).abs() < 0.012,
        "eval count {eval_count:.3}"
    );
    assert!(eval_time < 0.02, "eval GPU time {eval_time:.4}");
}

/// §6.1 — asynchronous checkpointing reduces blocking time by 3.6–58.7×.
#[test]
fn headline_checkpoint_speedup() {
    let small = CheckpointEngine::new(CheckpointScenario::paper_7b()).speedup();
    let big = CheckpointEngine::new(CheckpointScenario::paper_123b()).speedup();
    assert!((3.0..6.0).contains(&small), "7B speedup {small:.1}");
    assert!((45.0..70.0).contains(&big), "123B speedup {big:.1}");
}

/// §6.1 — the diagnosis system reduces manual intervention by ~90%.
#[test]
fn headline_manual_intervention_reduction() {
    let mut rng = SimRng::new(2);
    let seeded: Vec<FailureReason> = FailureReason::ALL
        .iter()
        .copied()
        .filter(|r| r.is_infrastructure())
        .collect();
    let mut pipeline = DiagnosisPipeline::new(&seeded);
    let weights: Vec<f64> = FailureReason::ALL
        .iter()
        .map(|r| r.spec().num as f64)
        .collect();
    let picker = Categorical::new(&weights);
    for _ in 0..300 {
        let truth = FailureReason::ALL[picker.sample_index(&mut rng)];
        let bundle = LogBundle::generate(truth, 80, &mut rng);
        let _ = pipeline.diagnose(&bundle.lines);
    }
    let automation = pipeline.stats.automation_fraction();
    assert!(automation >= 0.9, "automation {automation:.3}");
}

/// §6.2 — the trial coordinator reduces evaluation makespan by 1.3× (one
/// node) and 1.8× (four nodes).
#[test]
fn headline_evaluation_makespan() {
    let datasets = registry();
    let storage = SharedStorage::seren();
    let ratio = |nodes| {
        run_eval(Scheduler::Baseline, &datasets, nodes, &storage, 14.0)
            .unwrap()
            .makespan_secs
            / run_eval(Scheduler::FullCoordinator, &datasets, nodes, &storage, 14.0)
                .unwrap()
                .makespan_secs
    };
    let r1 = ratio(1);
    let r4 = ratio(4);
    assert!((1.15..1.55).contains(&r1), "one node: {r1:.2}x");
    assert!((1.55..2.1).contains(&r4), "four nodes: {r4:.2}x");
    assert!(r4 > r1);
}

/// §4.1 — InternEvo V2 (hierarchical ZeRO) is ~16% faster than V1 (3D
/// parallelism) on the 123B/2048-GPU profile.
#[test]
fn headline_internevo_v2_speedup() {
    let model = ModelConfig::dense_123b();
    let batch = 4 * 1024 * 1024;
    let v1 = StepTimeline::dense(&model, &Strategy::three_d_paper(2048), batch);
    let v2 = StepTimeline::dense(&model, &Strategy::hierarchical_paper(2048), batch);
    let speedup = v1.step_ms() / v2.step_ms();
    assert!((1.10..1.25).contains(&speedup), "speedup {speedup:.3}");
}

/// §5.2 — infrastructure failures: ~11% of failures, > 82% of failed GPU
/// time.
#[test]
fn headline_infrastructure_failure_impact() {
    let mut rng = SimRng::new(3);
    let events = FailureInjector::six_months().generate(&mut rng);
    assert_eq!(events.len(), 2575, "Table 3 population");
    let shares = FailureInjector::category_shares(&events);
    let (cat, count, time) = shares[0];
    assert_eq!(cat, FailureCategory::Infrastructure);
    assert!((0.08..0.14).contains(&count), "count share {count:.3}");
    assert!(time > 0.7, "GPU-time share {time:.3}");
}

/// §1/Table 1 — 4,704 A100s across the two clusters.
#[test]
fn headline_fleet_size() {
    let [s, k] = ClusterSpec::acme();
    assert_eq!(s.total_gpus() + k.total_gpus(), 4704);
}

/// §3.1 — Acme's median GPU-job runtime is ~2 minutes, far shorter than
/// prior DL traces.
#[test]
fn headline_short_job_durations() {
    let mut rng = SimRng::new(4);
    let jobs = WorkloadGenerator::kalos().generate(&mut rng, 60.0, 0).jobs;
    let med = TraceStats::new(&jobs).duration_cdf().median();
    assert!((1.0..4.0).contains(&med), "median {med:.2} min");
}
