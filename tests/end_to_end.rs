//! Cross-crate integration: the whole pipeline — workload generation →
//! scheduling → monitoring → failure injection → diagnosis → recovery —
//! wired together the way the experiments use it.

use acme::datacenter::Acme;
use acme::monitor::ClusterMonitor;
use acme_cluster::ClusterSpec;
use acme_failure::{DiagnosisPipeline, LogBundle, RecoveryAction, RecoveryManager};
use acme_scheduler::{coalesce_eval_batches, ClusterScheduler, SchedulerConfig};
use acme_sim_core::{SimDuration, SimRng};
use acme_telemetry::counters::metric;
use acme_workload::{JobStatus, JobType, TraceStats};

/// Generate → schedule → aggregate: the Figure-6 pipeline holds together
/// and conserves jobs.
#[test]
fn generate_schedule_aggregate() {
    let acme = Acme::new(11);
    let mut jobs = acme.run_days(14.0).kalos.jobs;
    let n = jobs.len();
    coalesce_eval_batches(&mut jobs, SimDuration::from_hours(24));
    let outcome = ClusterScheduler::new(SchedulerConfig::with_reservation(2560, 0.985)).run(jobs);
    assert_eq!(outcome.jobs.len(), n, "scheduler must not lose jobs");

    let stats = TraceStats::new(&outcome.jobs);
    // Every job eventually started (queue delays finite) and the makespan
    // extends past the last submission.
    assert!(outcome.finished_at > outcome.jobs.iter().map(|j| j.submit).max().unwrap());
    // The scheduler wrote queue delays: some evaluation job waited.
    let eval_delays = stats
        .queue_delay_cdf_by_type()
        .into_iter()
        .find(|(ty, _)| *ty == JobType::Evaluation)
        .map(|(_, c)| c)
        .unwrap();
    assert!(eval_delays.max() > 0.0, "no evaluation job ever queued");
}

/// The monitor's samples are consistent with the workload story: high GPU
/// occupancy, idle CPUs, the Kalos memory profile.
#[test]
fn monitor_is_consistent_with_characterization() {
    let mut rng = SimRng::new(12);
    let store = ClusterMonitor::new(ClusterSpec::kalos()).sample(&mut rng, 48, 4);
    let sm = store.cdf(metric::SM_ACTIVE).unwrap();
    let cpu = store.cdf(metric::CPU_UTIL).unwrap();
    // GPUs work harder than CPUs by a wide margin (Figure 7).
    assert!(sm.median() > 2.5 * cpu.median());
    // Power never exceeds the physical ceiling; temperature tracks power.
    let p = store.cdf(metric::GPU_POWER_W).unwrap();
    assert!(p.max() <= 600.0 && p.min() >= 55.0);
    let t = store.cdf(metric::GPU_MEM_TEMP_C).unwrap();
    assert!(t.max() < 110.0, "thermal model out of physical range");
}

/// Failure events drive the diagnosis pipeline end to end, and recovery
/// decisions match the event category.
#[test]
fn failures_flow_into_diagnosis_and_recovery() {
    let acme = Acme::new(13);
    let trace = acme.run_days(30.0);
    let mut rng = acme.rng(99);
    let mut pipeline = DiagnosisPipeline::with_all_rules();
    let manager = RecoveryManager;

    let mut infra_auto = 0;
    let mut infra_total = 0;
    for event in trace.failures.iter().take(150) {
        let bundle = LogBundle::generate(event.reason, 50, &mut rng);
        let report = pipeline
            .diagnose(&bundle.lines)
            .expect("generated logs are diagnosable");
        assert_eq!(report.reason, event.reason, "full rule set must be exact");
        let action = manager.decide(&report);
        if event.reason.is_infrastructure() {
            infra_total += 1;
            if let RecoveryAction::AutoRestart { .. } = action {
                infra_auto += 1;
            }
        }
    }
    assert!(
        infra_total > 0,
        "a 30-day trace must contain infrastructure failures"
    );
    assert_eq!(
        infra_auto, infra_total,
        "every infrastructure failure auto-recovers"
    );
}

/// Determinism across the entire stack: same seed, same bytes.
#[test]
fn whole_stack_determinism() {
    let run = |seed| {
        let mut out = String::new();
        for e in acme::experiments::all() {
            // A fast subset keeps this test quick but still spans crates.
            if ["table1", "fig5", "fig9", "fig12", "fig16l", "ckpt"].contains(&e.id) {
                out.push_str(&(e.run)(acme::experiments::RunParams::new(seed)));
            }
        }
        out
    };
    assert_eq!(run(21), run(21));
    assert_ne!(run(21), run(22), "seed must matter somewhere");
}

/// The trace's status mix is preserved through scheduling (the scheduler
/// reorders time, not outcomes).
#[test]
fn scheduler_preserves_job_outcomes() {
    let acme = Acme::new(14);
    let jobs = acme.run_days(7.0).kalos.jobs;
    let failed_before = jobs
        .iter()
        .filter(|j| j.status == JobStatus::Failed)
        .count();
    let outcome = ClusterScheduler::new(SchedulerConfig::without_reservation(2560)).run(jobs);
    let failed_after = outcome
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Failed)
        .count();
    assert_eq!(failed_before, failed_after);
}
