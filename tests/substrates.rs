//! Cross-substrate consistency: places where two independent models must
//! agree with each other (not just with the paper).

use acme_cluster::comm::{Collective, FabricSpec};
use acme_data::loader::{DataLoader, LoaderStrategy};
use acme_data::pipeline::DataPipeline;
use acme_failure::taxonomy::FailureReason;
use acme_sim_core::SimRng;
use acme_training::lessons::DataloaderLeak;
use acme_training::{ModelConfig, StepTimeline, Strategy};

/// The tokenizer's output feeds training batch math: one epoch of the
/// curated dataset yields exactly `total_tokens / seq_len` full sequences
/// (±1 for the dropped tail), so data-side and training-side token
/// accounting agree.
#[test]
fn data_pipeline_feeds_training_batches_consistently() {
    let mut rng = SimRng::new(1);
    let (dataset, _, stats) = DataPipeline::new(400).run_synthetic(&mut rng, 200, 900, 70.0);
    let seq_len = 256;
    let mut loader_rng = SimRng::new(2);
    let sequences = DataLoader::new(
        &dataset,
        LoaderStrategy::MetadataPreload,
        seq_len,
        &mut loader_rng,
    )
    .sequences_per_epoch();
    let expected = stats.total_tokens / seq_len;
    assert!(
        sequences == expected || sequences + 1 == expected,
        "{sequences} sequences vs {expected} expected"
    );
}

/// The hardcoded exposed-communication fractions in the training
/// strategies must be consistent with the first-principles fabric model:
/// the 3D-parallel tensor collectives of the 123B profile, priced by the
/// NVLink cost model, land in the same band as the calibrated constant.
#[test]
fn strategy_comm_fractions_agree_with_fabric_model() {
    let model = ModelConfig::dense_123b();
    let strat = Strategy::three_d_paper(2048);
    let fabric = FabricSpec::seren();

    // Per micro-batch per layer, tensor parallelism (tp=8, intra-node)
    // exposes two allreduces of the activation tensor: mb_tokens × h × 2 B.
    let mb_tokens = 4_194_304.0 / (64.0 * 16.0);
    let bytes = mb_tokens * model.hidden as f64 * 2.0;
    let per_layer = 2.0 * fabric.collective_secs(Collective::AllReduce, bytes, 8);
    let layers_per_stage = model.layers as f64 / 4.0;
    let comm_per_microbatch = per_layer * layers_per_stage;

    // Compute time per micro-batch from the timeline itself.
    let tl = StepTimeline::dense(&model, &strat, 4 * 1024 * 1024);
    let step_s = tl.step_ms() / 1e3;
    let comm_per_step = comm_per_microbatch * 16.0 * 3.0; // fwd + bwd ≈ 3× fwd volume
    let modeled_fraction = comm_per_step / step_s;

    // The strategy constant is 0.12; the fabric model must land in the
    // same regime (same order, below the bubble-dominated ceiling).
    assert!(
        (0.02..0.3).contains(&modeled_fraction),
        "fabric-modeled TP exposure {modeled_fraction:.3} inconsistent with the 0.12 calibration"
    );
}

/// The Appendix-B dataloader-leak model must agree with Table 3: the mean
/// time-to-failure of `DataloaderKilled` (1580.6 min) and the leak model's
/// hours-to-OOM describe the same phenomenon.
#[test]
fn leak_model_agrees_with_table3_ttf() {
    let table3_mean_hours = FailureReason::DataloaderKilled.spec().ttf_avg_mins / 60.0;
    let model_hours = DataloaderLeak::paper_default().hours_to_oom().unwrap();
    let ratio = model_hours / table3_mean_hours;
    assert!(
        (0.8..1.25).contains(&ratio),
        "leak model {model_hours:.1} h vs Table 3 {table3_mean_hours:.1} h"
    );
}

/// The MoE timeline's hardcoded single-NIC exposure matches what the
/// fabric model computes from the routing volume.
#[test]
fn moe_exposure_agrees_with_fabric_model() {
    let moe = ModelConfig::moe_mistral_8x7b();
    let tl = StepTimeline::moe(&moe, 1024, true);
    let timeline_fraction = tl.idle_fraction(20.0);

    let fabric = FabricSpec::seren();
    let tokens_per_gpu = 4_194_304.0 / 1024.0;
    let bytes = tokens_per_gpu * moe.hidden as f64 * 2.0 * 2.0; // bf16 × top-2
    let a2a = fabric.collective_secs(Collective::AllToAll, bytes, 1024);
    let comm = a2a * 2.0 * moe.layers as f64;
    let compute = moe.train_flops_per_token() * 4_194_304.0 / (1024.0 * 312e12 * 0.45);
    let fabric_fraction = comm / (comm + compute);

    assert!(
        (timeline_fraction - fabric_fraction).abs() < 0.15,
        "timeline {timeline_fraction:.2} vs fabric {fabric_fraction:.2}"
    );
}
